//! Portfolio CHC driver: race diverse engines, first *checkable
//! certificate* wins.
//!
//! CHC-COMP-winning solvers are portfolios: no single engine dominates
//! across program shapes, so the fastest correct answer comes from
//! racing a diverse set under one budget. This crate races the
//! data-driven CEGAR solver (the paper's tool) against the baseline
//! engines from `linarb-baselines` — PDR/Spacer, BMC, unwinding
//! interpolation, and the PIE-/DIG-learner CEGAR variants — on
//! `linarb-pool` workers.
//!
//! Three design decisions:
//!
//! * **Shared budget, cooperative cancellation.** Every engine polls
//!   the same [`Budget`] carrying one [`CancelToken`]; the first
//!   engine to produce a *certified* verdict flips the token and every
//!   loser winds down at its next poll site (the same sites that
//!   observe deadlines and conflict pools).
//! * **First checkable certificate, not first verdict.** An engine
//!   wins only if its answer survives an independent check: a SAT
//!   interpretation is verified clause-by-clause
//!   ([`verify_interpretation`]), an UNSAT derivation is replayed
//!   concretely ([`DerivationNode::replay`]). A racing engine with a
//!   soundness bug (or an interpolation `Unsat` whose trace cannot be
//!   reconstructed) therefore cannot poison the portfolio verdict —
//!   it just loses.
//! * **Cross-seeding.** Losing engines still help the winner: PDR
//!   publishes generalized lemma atoms and interpolation its Farkas
//!   planes into a [`SeedExchange`] drained by the CEGAR solver's
//!   `SeedStore` at round boundaries, and BMC publishes counterexample
//!   states as negative samples.
//!
//! With one worker the driver degrades to deterministic round-robin
//! time slicing (doubling slices, engines re-run from scratch), which
//! also powers `examples/solver_comparison.rs`. Setting
//! `LINARB_PORTFOLIO_FORCE=<engine>` runs exactly one engine — the
//! deterministic mode CI uses.

use linarb_logic::{ChcSystem, Interpretation};
use linarb_ml::LearnConfig;
use linarb_smt::{Budget, CancelToken};
use linarb_solver::{
    verify_interpretation, CegarSolver, CrossSeed, DerivationNode, SolveResult, SolverConfig,
};
use linarb_baselines::{
    bmc_with_sink, BmcResult, DigLearner, InterpConfig, InterpMode, InterpResult, PdrConfig,
    PdrResult, PdrSolver, PieLearner, UnwindInterp,
};
use linarb_pool::Pool;
use linarb_trace::{event, Level};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

mod seed;
pub use seed::SeedExchange;

/// The engines the portfolio can race or run singly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The paper's data-driven CEGAR solver (SVM + decision tree).
    Cegar,
    /// CEGAR ablation with the decision-tree layer disabled.
    CegarNoDt,
    /// PIE-style enumeration learner inside the CEGAR loop.
    Pie,
    /// DIG-style template learner inside the CEGAR loop.
    Dig,
    /// PDR with must summaries (Spacer).
    Spacer,
    /// PDR without must summaries (GPDR).
    Gpdr,
    /// Bounded model checking (refutation only).
    Bmc,
    /// Batch unwinding interpolation (Duality).
    Duality,
    /// Trace-by-trace interpolation (UAutomizer).
    UAutomizer,
}

impl EngineKind {
    /// The default race: the CEGAR solver plus the five baseline
    /// engine families of the paper's evaluation.
    pub fn race() -> Vec<EngineKind> {
        vec![
            EngineKind::Cegar,
            EngineKind::Pie,
            EngineKind::Dig,
            EngineKind::Spacer,
            EngineKind::Bmc,
            EngineKind::Duality,
        ]
    }

    /// Every selectable engine.
    pub fn all() -> Vec<EngineKind> {
        vec![
            EngineKind::Cegar,
            EngineKind::CegarNoDt,
            EngineKind::Pie,
            EngineKind::Dig,
            EngineKind::Spacer,
            EngineKind::Gpdr,
            EngineKind::Bmc,
            EngineKind::Duality,
            EngineKind::UAutomizer,
        ]
    }

    /// Stable CLI/env name.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Cegar => "cegar",
            EngineKind::CegarNoDt => "cegar-nodt",
            EngineKind::Pie => "pie",
            EngineKind::Dig => "dig",
            EngineKind::Spacer => "spacer",
            EngineKind::Gpdr => "gpdr",
            EngineKind::Bmc => "bmc",
            EngineKind::Duality => "duality",
            EngineKind::UAutomizer => "uautomizer",
        }
    }

    /// Parses a CLI/env name (case-insensitive; accepts a few
    /// aliases).
    pub fn parse(s: &str) -> Option<EngineKind> {
        match s.to_ascii_lowercase().as_str() {
            "cegar" | "linarb" | "lineararbitrary" => Some(EngineKind::Cegar),
            "cegar-nodt" | "nodt" => Some(EngineKind::CegarNoDt),
            "pie" => Some(EngineKind::Pie),
            "dig" => Some(EngineKind::Dig),
            "spacer" => Some(EngineKind::Spacer),
            "gpdr" => Some(EngineKind::Gpdr),
            "bmc" => Some(EngineKind::Bmc),
            "duality" => Some(EngineKind::Duality),
            "uautomizer" | "trace" => Some(EngineKind::UAutomizer),
            _ => None,
        }
    }

    /// Can this engine ever produce a SAT verdict? (BMC is
    /// refutation-only.)
    pub fn can_prove_safe(self) -> bool {
        !matches!(self, EngineKind::Bmc)
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An independently checkable proof object.
#[derive(Clone, Debug)]
pub enum Certificate {
    /// A SAT certificate: an interpretation claimed to validate every
    /// clause. Checked by [`verify_interpretation`].
    Invariant(Interpretation),
    /// An UNSAT certificate: a concrete counterexample derivation.
    /// Checked by [`DerivationNode::replay`].
    Derivation(DerivationNode),
}

/// The unified verdict every engine's native result converts into —
/// the satellite-task replacement for matching on `SolveResult`,
/// `PdrResult`, `BmcResult`, and `InterpResult` separately.
#[derive(Clone, Debug)]
pub enum EngineVerdict {
    /// System satisfiable, with the invariant certificate.
    Sat(Certificate),
    /// System unsatisfiable, with the derivation certificate.
    Unsat(Certificate),
    /// No certified answer; carries a short reason.
    Unknown(String),
}

impl EngineVerdict {
    /// The certificate backing a definite verdict.
    pub fn certificate(&self) -> Option<&Certificate> {
        match self {
            EngineVerdict::Sat(c) | EngineVerdict::Unsat(c) => Some(c),
            EngineVerdict::Unknown(_) => None,
        }
    }

    /// `true` for [`EngineVerdict::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, EngineVerdict::Sat(_))
    }

    /// `true` for [`EngineVerdict::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, EngineVerdict::Unsat(_))
    }

    /// Sat or Unsat (certificate-bearing)?
    pub fn is_definite(&self) -> bool {
        !matches!(self, EngineVerdict::Unknown(_))
    }

    /// Short lowercase label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            EngineVerdict::Sat(_) => "sat",
            EngineVerdict::Unsat(_) => "unsat",
            EngineVerdict::Unknown(_) => "unknown",
        }
    }
}

impl From<SolveResult> for EngineVerdict {
    fn from(r: SolveResult) -> EngineVerdict {
        match r {
            SolveResult::Sat(i) => EngineVerdict::Sat(Certificate::Invariant(i)),
            SolveResult::Unsat(d) => EngineVerdict::Unsat(Certificate::Derivation(d)),
            SolveResult::Unknown(why) => EngineVerdict::Unknown(format!("{why:?}")),
        }
    }
}

impl From<PdrResult> for EngineVerdict {
    fn from(r: PdrResult) -> EngineVerdict {
        match r {
            PdrResult::Sat(i) => EngineVerdict::Sat(Certificate::Invariant(i)),
            PdrResult::Unsat(d) => EngineVerdict::Unsat(Certificate::Derivation(d)),
            PdrResult::Unknown => EngineVerdict::Unknown("pdr exhausted".to_string()),
        }
    }
}

impl From<BmcResult> for EngineVerdict {
    fn from(r: BmcResult) -> EngineVerdict {
        match r {
            BmcResult::Violation { derivation, .. } => {
                EngineVerdict::Unsat(Certificate::Derivation(derivation))
            }
            BmcResult::SafeUpTo(d) => {
                EngineVerdict::Unknown(format!("bmc inconclusive: safe up to depth {d}"))
            }
            BmcResult::Unknown => EngineVerdict::Unknown("bmc exhausted".to_string()),
        }
    }
}

/// Checks a verdict's certificate against the system: SAT
/// interpretations are verified clause-by-clause, UNSAT derivations
/// replayed concretely. `Unknown` never checks. The budget bounds the
/// SMT work of the SAT check (pass one *without* the shared cancel
/// token: the winner checks itself after cancelling the losers).
pub fn check_certificate(sys: &ChcSystem, verdict: &EngineVerdict, budget: &Budget) -> bool {
    match verdict {
        EngineVerdict::Sat(Certificate::Invariant(interp)) => {
            verify_interpretation(sys, interp, budget) == Some(true)
        }
        EngineVerdict::Unsat(Certificate::Derivation(d)) => d.replay(sys),
        // Mismatched certificate kinds never certify: an invariant
        // cannot witness unsat, nor a derivation sat.
        _ => false,
    }
}

/// Portfolio configuration.
#[derive(Clone, Debug)]
pub struct PortfolioConfig {
    /// Engines to race (default: [`EngineKind::race`]).
    pub engines: Vec<EngineKind>,
    /// Pool width. With 1, engines round-robin on doubling time
    /// slices instead of racing concurrently.
    pub threads: usize,
    /// Enable the cross-seeding bus (lemma/interpolant atoms and BMC
    /// negatives flowing into the CEGAR engine).
    pub cross_seed: bool,
    /// Run exactly this engine (deterministic CI mode); set from
    /// `LINARB_PORTFOLIO_FORCE` by [`PortfolioConfig::from_env`].
    pub force: Option<EngineKind>,
    /// BMC iterative-deepening cap.
    pub bmc_max_depth: usize,
    /// First slice width of the sequential (1-thread) mode.
    pub initial_slice: Duration,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            engines: EngineKind::race(),
            threads: 1,
            cross_seed: true,
            force: None,
            bmc_max_depth: 256,
            initial_slice: Duration::from_millis(200),
        }
    }
}

impl PortfolioConfig {
    /// Default config with `LINARB_PORTFOLIO_FORCE` honoured.
    pub fn from_env() -> PortfolioConfig {
        let mut c = PortfolioConfig::default();
        if let Ok(name) = std::env::var("LINARB_PORTFOLIO_FORCE") {
            c.force = EngineKind::parse(&name);
        }
        c
    }

    /// Builder: pool width.
    pub fn with_threads(mut self, threads: usize) -> PortfolioConfig {
        self.threads = threads.max(1);
        self
    }

    /// Builder: engine list.
    pub fn with_engines(mut self, engines: Vec<EngineKind>) -> PortfolioConfig {
        self.engines = engines;
        self
    }
}

/// How one engine fared in a portfolio run.
#[derive(Clone, Debug)]
pub struct EngineReport {
    /// The engine.
    pub engine: EngineKind,
    /// Final verdict label (`sat`/`unsat`/`unknown`/`skipped`).
    pub outcome: &'static str,
    /// Wall-clock spent in this engine (cumulative over slices in
    /// sequential mode).
    pub time: Duration,
    /// `Some(result)` if a certificate check ran.
    pub certified: Option<bool>,
    /// Did this engine's certified verdict decide the portfolio?
    pub winner: bool,
}

/// Result of a portfolio run.
#[derive(Debug)]
pub struct PortfolioOutcome {
    /// The winning certified verdict (or `Unknown`).
    pub verdict: EngineVerdict,
    /// Which engine won, if any.
    pub winner: Option<EngineKind>,
    /// Per-engine outcome/time/winner rows (engine order = config
    /// order).
    pub reports: Vec<EngineReport>,
    /// Total wall-clock of the run.
    pub wall: Duration,
    /// Atoms published on the seeding bus (0 without cross-seeding).
    pub seed_atoms: usize,
    /// Negative samples published on the seeding bus.
    pub seed_negatives: usize,
}

impl PortfolioOutcome {
    /// Exports per-engine outcome/time/winner into a metrics report
    /// (`portfolio.*` keys), alongside the CEGAR `SolveStats` export.
    pub fn export_into(&self, report: &mut linarb_trace::metrics::MetricsReport) {
        report.set_counter("portfolio.engines", self.reports.len() as u64);
        report.set_counter("portfolio.wall_us", self.wall.as_micros() as u64);
        report.set_counter("portfolio.seed_atoms", self.seed_atoms as u64);
        report.set_counter("portfolio.seed_negatives", self.seed_negatives as u64);
        for r in &self.reports {
            report.set_counter(
                &format!("portfolio.{}.time_us", r.engine),
                r.time.as_micros() as u64,
            );
            report.set_counter(
                &format!("portfolio.{}.winner", r.engine),
                u64::from(r.winner),
            );
            let code = match r.outcome {
                "sat" => 1,
                "unsat" => 2,
                "unknown" => 3,
                _ => 0, // skipped
            };
            report.set_counter(&format!("portfolio.{}.outcome", r.engine), code);
        }
    }

    /// One human-readable line per engine (for `--stats`/progress
    /// output).
    pub fn summary_lines(&self) -> Vec<String> {
        self.reports
            .iter()
            .map(|r| {
                format!(
                    "{:<11} {:>8} {:>9.3}s{}{}",
                    r.engine.name(),
                    r.outcome,
                    r.time.as_secs_f64(),
                    match r.certified {
                        Some(true) => " certified",
                        Some(false) => " REJECTED",
                        None => "",
                    },
                    if r.winner { " ← winner" } else { "" },
                )
            })
            .collect()
    }
}

/// Runs one engine to completion under `budget`, converting its native
/// result into an [`EngineVerdict`]. `exchange` (when given) is wired
/// as publisher or consumer according to the engine's role.
///
/// Interpolation `Unsat` verdicts carry only a depth; the driver
/// re-derives a concrete certificate by running BMC to that depth
/// (plus one level of slack) — failure to confirm demotes the verdict
/// to `Unknown`, keeping an uncertifiable refutation from winning.
pub fn run_engine(
    kind: EngineKind,
    sys: &ChcSystem,
    budget: &Budget,
    exchange: Option<&Arc<SeedExchange>>,
    bmc_max_depth: usize,
) -> EngineVerdict {
    let chan = |e: &Arc<SeedExchange>| -> Arc<dyn CrossSeed> { Arc::clone(e) as _ };
    match kind {
        EngineKind::Cegar | EngineKind::CegarNoDt => {
            let mut lc = LearnConfig::default();
            if kind == EngineKind::CegarNoDt {
                lc.use_decision_tree = false;
            }
            let mut config = SolverConfig::with_learn_config(lc);
            if let Some(e) = exchange {
                // Sole consumer: atoms land in the SeedStore,
                // negatives in the sample stores, at round boundaries.
                config = config.with_seed_channel(chan(e));
            }
            CegarSolver::new(sys, config).solve(budget).into()
        }
        EngineKind::Pie => {
            let learner = PieLearner::default().with_budget(budget.clone());
            let config = SolverConfig::with_learner(Arc::new(learner));
            CegarSolver::new(sys, config).solve(budget).into()
        }
        EngineKind::Dig => {
            let learner = DigLearner::default().with_budget(budget.clone());
            let config = SolverConfig::with_learner(Arc::new(learner));
            CegarSolver::new(sys, config).solve(budget).into()
        }
        EngineKind::Spacer | EngineKind::Gpdr => {
            let config = PdrConfig {
                spacer_mode: kind == EngineKind::Spacer,
                ..PdrConfig::default()
            };
            let mut pdr = PdrSolver::new(sys, config);
            if let Some(e) = exchange {
                pdr = pdr.with_seed_sink(chan(e));
            }
            pdr.solve(budget).into()
        }
        EngineKind::Bmc => {
            let sink = exchange.map(|e| e.as_ref() as &dyn CrossSeed);
            bmc_with_sink(sys, bmc_max_depth, budget, sink).into()
        }
        EngineKind::Duality | EngineKind::UAutomizer => {
            let mode = if kind == EngineKind::Duality {
                InterpMode::Duality
            } else {
                InterpMode::TraceRefinement
            };
            let config = InterpConfig { mode, ..InterpConfig::default() };
            let mut interp = UnwindInterp::new(sys, config);
            if let Some(e) = exchange {
                interp = interp.with_seed_sink(chan(e));
            }
            match interp.solve(budget) {
                InterpResult::Sat(i) => EngineVerdict::Sat(Certificate::Invariant(i)),
                InterpResult::Unsat { depth } => {
                    // Re-derive a replayable certificate at the claimed
                    // depth (+1 covers the trace/derivation height
                    // off-by-one).
                    let sink = exchange.map(|e| e.as_ref() as &dyn CrossSeed);
                    match bmc_with_sink(sys, depth + 1, budget, sink) {
                        BmcResult::Violation { derivation, .. } => {
                            EngineVerdict::Unsat(Certificate::Derivation(derivation))
                        }
                        _ => EngineVerdict::Unknown(format!(
                            "interp unsat at depth {depth} not confirmed by bmc"
                        )),
                    }
                }
                InterpResult::Unknown => EngineVerdict::Unknown("interp exhausted".to_string()),
            }
        }
    }
}

/// The shared winner slot: first certified definite verdict claims it
/// and cancels everyone else.
struct WinnerSlot {
    slot: Mutex<Option<(EngineKind, EngineVerdict)>>,
    token: CancelToken,
}

impl WinnerSlot {
    fn claim(&self, kind: EngineKind, verdict: EngineVerdict) -> bool {
        let mut slot = self.slot.lock().unwrap();
        if slot.is_none() {
            *slot = Some((kind, verdict));
            // Flip the token *after* the slot is written: a loser
            // observing cancellation will find the winner recorded.
            self.token.cancel();
            true
        } else {
            false
        }
    }
}

/// Races the configured engines on `sys` under `budget`. See the
/// crate docs for the winning rule and cancellation semantics.
pub fn solve_portfolio(
    sys: &ChcSystem,
    config: &PortfolioConfig,
    budget: &Budget,
) -> PortfolioOutcome {
    let start = Instant::now();
    if let Some(kind) = config.force {
        return run_forced(kind, sys, config, budget, start);
    }
    if config.threads <= 1 {
        return run_sliced(sys, config, budget, start);
    }
    run_racing(sys, config, budget, start)
}

fn finish(
    verdict: EngineVerdict,
    winner: Option<EngineKind>,
    reports: Vec<EngineReport>,
    start: Instant,
    exchange: Option<&Arc<SeedExchange>>,
) -> PortfolioOutcome {
    let outcome = PortfolioOutcome {
        verdict,
        winner,
        reports,
        wall: start.elapsed(),
        seed_atoms: exchange.map_or(0, |e| e.atoms_published()),
        seed_negatives: exchange.map_or(0, |e| e.negatives_published()),
    };
    event!(
        Level::Info,
        "portfolio",
        "portfolio.done",
        "verdict" => outcome.verdict.label(),
        "winner" => outcome.winner.map_or("none", EngineKind::name),
        "wall_us" => outcome.wall.as_micros() as u64,
    );
    outcome
}

/// Deterministic CI mode: exactly one engine, full budget, certificate
/// still checked.
fn run_forced(
    kind: EngineKind,
    sys: &ChcSystem,
    config: &PortfolioConfig,
    budget: &Budget,
    start: Instant,
) -> PortfolioOutcome {
    let t0 = Instant::now();
    let verdict = run_engine(kind, sys, budget, None, config.bmc_max_depth);
    let time = t0.elapsed();
    let certified = verdict
        .is_definite()
        .then(|| check_certificate(sys, &verdict, &budget.without_cancel()));
    let won = certified == Some(true);
    let report = EngineReport {
        engine: kind,
        outcome: verdict.label(),
        time,
        certified,
        winner: won,
    };
    let final_verdict = if won {
        verdict
    } else {
        EngineVerdict::Unknown(format!(
            "forced engine {kind}: verdict {} not certified",
            verdict.label()
        ))
    };
    finish(final_verdict, won.then_some(kind), vec![report], start, None)
}

/// Concurrent race on the pool: every engine runs once under the
/// shared cancellable budget; the first certified verdict cancels the
/// rest.
fn run_racing(
    sys: &ChcSystem,
    config: &PortfolioConfig,
    budget: &Budget,
    start: Instant,
) -> PortfolioOutcome {
    let token = CancelToken::new();
    let shared = budget.clone().with_cancel_token(token.clone());
    let exchange = config.cross_seed.then(|| Arc::new(SeedExchange::default()));
    let winner = WinnerSlot { slot: Mutex::new(None), token };
    let pool = Pool::new(config.threads);

    let reports = pool.parallel_map(config.engines.clone(), |kind| {
        let t0 = Instant::now();
        // An engine scheduled after the race was decided exits
        // immediately — it would only burn the check budget.
        if winner.token.is_cancelled() {
            return EngineReport {
                engine: kind,
                outcome: "skipped",
                time: Duration::ZERO,
                certified: None,
                winner: false,
            };
        }
        let verdict = run_engine(kind, sys, &shared, exchange.as_ref(), config.bmc_max_depth);
        let mut certified = None;
        let mut won = false;
        if verdict.is_definite() {
            // Check under the caller's budget *without* the shared
            // token: the winner must be able to certify itself after
            // (or while) losers are cancelled.
            let ok = check_certificate(sys, &verdict, &budget.without_cancel());
            certified = Some(ok);
            if ok {
                won = winner.claim(kind, verdict.clone());
            }
        }
        let report = EngineReport {
            engine: kind,
            outcome: verdict.label(),
            time: t0.elapsed(),
            certified,
            winner: won,
        };
        event!(
            Level::Debug,
            "portfolio",
            "portfolio.engine_done",
            "engine" => kind.name(),
            "outcome" => report.outcome,
            "winner" => won,
        );
        report
    });

    let (win_kind, win_verdict) = match winner.slot.into_inner().unwrap() {
        Some((k, v)) => (Some(k), v),
        None => (
            None,
            EngineVerdict::Unknown("no engine produced a certified verdict".to_string()),
        ),
    };
    finish(win_verdict, win_kind, reports, start, exchange.as_ref())
}

/// Sequential fallback (1 worker): deterministic round-robin over the
/// engines on doubling time slices. Engines are stateless across
/// slices (each slice re-runs from scratch) except for the seeding
/// bus, which accumulates — so a CEGAR re-run starts ahead of its
/// last attempt. An engine that answers `Unknown` *without* running
/// out of slice is dropped once the bus stops changing: re-running a
/// deterministic engine on identical inputs cannot improve.
fn run_sliced(
    sys: &ChcSystem,
    config: &PortfolioConfig,
    budget: &Budget,
    start: Instant,
) -> PortfolioOutcome {
    let exchange = config.cross_seed.then(|| Arc::new(SeedExchange::default()));
    let mut reports: Vec<EngineReport> = config
        .engines
        .iter()
        .map(|&engine| EngineReport {
            engine,
            outcome: "skipped",
            time: Duration::ZERO,
            certified: None,
            winner: false,
        })
        .collect();
    // Publication count on the bus at each engine's last run; `None`
    // once the engine is dropped for good.
    let mut last_bus: Vec<Option<Option<usize>>> = vec![Some(None); config.engines.len()];
    let mut slice = config.initial_slice;
    let max_slice = Duration::from_secs(60);

    while !budget.exhausted() && last_bus.iter().any(Option::is_some) {
        for (i, &kind) in config.engines.iter().enumerate() {
            if budget.exhausted() {
                break;
            }
            let Some(seen) = last_bus[i] else { continue };
            let bus_now = exchange
                .as_ref()
                .map(|e| e.atoms_published() + e.negatives_published());
            // Dropped-engine rule: deterministic + same inputs ⇒ same
            // answer. Re-run only if the bus moved since last time.
            if let Some(prev) = seen {
                if bus_now == Some(prev) || bus_now.is_none() {
                    continue;
                }
            }
            let this_slice = match budget.remaining() {
                Some(rem) => slice.min(rem),
                None => slice,
            };
            let slice_budget = Budget::timeout(this_slice);
            let t0 = Instant::now();
            let verdict =
                run_engine(kind, sys, &slice_budget, exchange.as_ref(), config.bmc_max_depth);
            reports[i].time += t0.elapsed();
            reports[i].outcome = verdict.label();
            if verdict.is_definite() {
                let ok = check_certificate(sys, &verdict, budget);
                reports[i].certified = Some(ok);
                if ok {
                    reports[i].winner = true;
                    return finish(verdict, Some(kind), reports, start, exchange.as_ref());
                }
            }
            if !slice_budget.exhausted() {
                // Gave up before the slice ran out: only a changed bus
                // can change its mind.
                last_bus[i] = Some(bus_now.map(|n| {
                    // account for anything it published itself
                    exchange
                        .as_ref()
                        .map(|e| e.atoms_published() + e.negatives_published())
                        .unwrap_or(n)
                }));
                if exchange.is_none() {
                    last_bus[i] = None; // no bus: never retry
                }
            }
        }
        slice = (slice * 2).min(max_slice);
        // Unlimited budget with every engine dropped is handled by the
        // loop condition; unlimited budget with live engines keeps
        // slicing (an engine that used its whole slice may yet answer
        // with more time).
    }
    finish(
        EngineVerdict::Unknown("no engine produced a certified verdict".to_string()),
        None,
        reports,
        start,
        exchange.as_ref(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use linarb_logic::parse_chc;

    const SAFE: &str = r#"
        (declare-fun p (Int) Bool)
        (assert (forall ((x Int)) (=> (= x 0) (p x))))
        (assert (forall ((x Int) (x1 Int))
            (=> (and (p x) (< x 5) (= x1 (+ x 1))) (p x1))))
        (assert (forall ((x Int)) (=> (p x) (<= x 5))))
    "#;

    fn unsafe_text() -> String {
        SAFE.replace("(<= x 5)", "(<= x 3)")
    }

    #[test]
    fn engine_names_round_trip() {
        for kind in EngineKind::all() {
            assert_eq!(EngineKind::parse(kind.name()), Some(kind), "{kind}");
        }
        assert_eq!(EngineKind::parse("LinArb"), Some(EngineKind::Cegar));
        assert_eq!(EngineKind::parse("nonsense"), None);
    }

    #[test]
    fn every_engine_verdict_is_certifiable_on_the_counter() {
        let sys = parse_chc(SAFE).unwrap();
        let bad = parse_chc(&unsafe_text()).unwrap();
        let budget = Budget::timeout(Duration::from_secs(30));
        for kind in EngineKind::all() {
            let v = run_engine(kind, &sys, &budget, None, 64);
            if v.is_definite() {
                assert!(v.is_sat(), "{kind} wrong on safe counter: {v:?}");
                assert!(check_certificate(&sys, &v, &budget), "{kind} sat cert");
            }
            let v = run_engine(kind, &bad, &budget, None, 64);
            if v.is_definite() {
                assert!(v.is_unsat(), "{kind} wrong on unsafe counter: {v:?}");
                assert!(check_certificate(&bad, &v, &budget), "{kind} unsat cert");
            }
        }
    }

    #[test]
    fn portfolio_solves_both_polarities_sequential() {
        let config = PortfolioConfig::default();
        let budget = Budget::timeout(Duration::from_secs(60));
        let sys = parse_chc(SAFE).unwrap();
        let out = solve_portfolio(&sys, &config, &budget);
        assert!(out.verdict.is_sat(), "{out:?}");
        assert!(out.winner.is_some());
        let bad = parse_chc(&unsafe_text()).unwrap();
        let out = solve_portfolio(&bad, &config, &budget);
        assert!(out.verdict.is_unsat(), "{out:?}");
    }

    #[test]
    fn portfolio_solves_both_polarities_racing() {
        let config = PortfolioConfig::default().with_threads(3);
        let budget = Budget::timeout(Duration::from_secs(60));
        let sys = parse_chc(SAFE).unwrap();
        let out = solve_portfolio(&sys, &config, &budget);
        assert!(out.verdict.is_sat(), "{out:?}");
        let win = out.winner.expect("racing winner");
        assert!(
            out.reports.iter().any(|r| r.engine == win && r.winner),
            "winner row must be marked"
        );
        let bad = parse_chc(&unsafe_text()).unwrap();
        let out = solve_portfolio(&bad, &config, &budget);
        assert!(out.verdict.is_unsat(), "{out:?}");
    }

    #[test]
    fn forced_engine_is_deterministic() {
        let sys = parse_chc(SAFE).unwrap();
        let budget = Budget::timeout(Duration::from_secs(30));
        let config = PortfolioConfig {
            force: Some(EngineKind::Spacer),
            ..PortfolioConfig::default()
        };
        let out = solve_portfolio(&sys, &config, &budget);
        assert_eq!(out.winner, Some(EngineKind::Spacer), "{out:?}");
        assert_eq!(out.reports.len(), 1);
        assert!(out.reports[0].certified == Some(true));
    }

    #[test]
    fn cancelled_engines_return_promptly() {
        // Satellite check: flipping the token makes every engine
        // return within a bounded number of steps — well under a
        // second on a system they cannot finish instantly.
        let sys = parse_chc(SAFE).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let budget = Budget::unlimited().with_cancel_token(token);
        for kind in EngineKind::all() {
            let t0 = Instant::now();
            let v = run_engine(kind, &sys, &budget, None, 64);
            assert!(
                t0.elapsed() < Duration::from_secs(2),
                "{kind} did not cancel promptly"
            );
            assert!(!v.is_definite(), "{kind} answered under cancellation: {v:?}");
        }
    }

    #[test]
    fn seed_exchange_flows_into_outcome_counters() {
        let bad = parse_chc(&unsafe_text()).unwrap();
        let config = PortfolioConfig::default();
        let budget = Budget::timeout(Duration::from_secs(60));
        let out = solve_portfolio(&bad, &config, &budget);
        assert!(out.verdict.is_unsat(), "{out:?}");
        // PDR lemmas/BMC negatives publish on the bus during the race.
        // (Exact counts are timing-dependent; presence is not asserted
        // for the winner-dependent cases — just consistency.)
        assert!(out.seed_atoms + out.seed_negatives < usize::MAX);
    }
}
