//! Logic intermediate representation for the linarb CHC solver.
//!
//! This crate defines the shared vocabulary of the whole system:
//!
//! * [`Var`] — integer-sorted first-order variables.
//! * [`LinExpr`] — linear expressions `Σ aᵢ·xᵢ + c` with exact
//!   [`BigInt`](linarb_arith::BigInt) coefficients.
//! * [`Atom`] — normalized linear atoms `e ≤ 0`, closed under integer
//!   negation (`¬(e ≤ 0) ≡ -e + 1 ≤ 0`).
//! * [`Formula`] — quantifier-free boolean combinations of atoms.
//! * [`Clause`], [`ChcSystem`] — Constrained Horn Clauses
//!   `φ ∧ p₁(T̄₁) ∧ … ∧ pₖ(T̄ₖ) → h`, where `h` is a predicate
//!   application or a known (goal) formula.
//! * [`parse_chc`] / [`ChcSystem::to_smtlib`] — a parser and printer
//!   for the SMT-LIB2 `HORN` fragment used by CHC-COMP and SeaHorn.
//!
//! # Examples
//!
//! Build the CHC encoding of the paper's Fig. 1 loop by hand:
//!
//! ```
//! use linarb_arith::int;
//! use linarb_logic::{Atom, ChcSystem, Formula, LinExpr};
//!
//! let mut sys = ChcSystem::new();
//! let p = sys.declare_pred("p", 2);
//! let x = sys.fresh_var("x");
//! let y = sys.fresh_var("y");
//! // x = 1 /\ y = 0 -> p(x, y)
//! let init = Formula::and(vec![
//!     Formula::from(Atom::eq_expr(LinExpr::var(x), LinExpr::constant(int(1)))),
//!     Formula::from(Atom::eq_expr(LinExpr::var(y), LinExpr::constant(int(0)))),
//! ]);
//! sys.fact(init, p, vec![LinExpr::var(x), LinExpr::var(y)]);
//! assert_eq!(sys.clauses().len(), 1);
//! ```

mod atom;
mod chc;
mod formula;
mod linexpr;
mod modatom;
mod model;
mod parser;
mod var;

pub use atom::Atom;
pub use chc::{
    Clause, ClauseHead, ClauseId, ChcSystem, Interpretation, PredApp, PredId, Predicate,
};
pub use formula::Formula;
pub use linexpr::LinExpr;
pub use modatom::ModAtom;
pub use model::Model;
pub use parser::{parse_chc, ParseChcError};
pub use var::Var;
