//! Constrained Horn Clauses.

use crate::formula::Formula;
use crate::linexpr::LinExpr;
use crate::model::Model;
use crate::var::Var;
use linarb_arith::BigInt;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Identifier of an unknown predicate symbol within a [`ChcSystem`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredId(pub u32);

impl fmt::Debug for PredId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifier of a clause within a [`ChcSystem`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClauseId(pub u32);

impl fmt::Debug for ClauseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// An unknown predicate symbol with canonical parameter variables.
///
/// Interpretations ([`Interpretation`]) are formulas over `params`;
/// applying a predicate to argument terms substitutes the parameters.
#[derive(Clone, Debug)]
pub struct Predicate {
    /// Identifier within the owning system.
    pub id: PredId,
    /// Human-readable name.
    pub name: String,
    /// Canonical parameter variables, one per argument position.
    pub params: Vec<Var>,
}

impl Predicate {
    /// Number of arguments.
    pub fn arity(&self) -> usize {
        self.params.len()
    }
}

/// An application `p(t₁, …, tₙ)` of an unknown predicate to linear
/// argument terms.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PredApp {
    /// The applied predicate.
    pub pred: PredId,
    /// Argument terms.
    pub args: Vec<LinExpr>,
}

impl PredApp {
    /// Creates an application; arity is validated by
    /// [`ChcSystem::add_clause`].
    pub fn new(pred: PredId, args: Vec<LinExpr>) -> PredApp {
        PredApp { pred, args }
    }

    /// Instantiates an interpretation formula (over `params`) at this
    /// application's argument terms.
    pub fn instantiate(&self, interp: &Formula, params: &[Var]) -> Formula {
        debug_assert_eq!(params.len(), self.args.len());
        let map: HashMap<Var, LinExpr> =
            params.iter().copied().zip(self.args.iter().cloned()).collect();
        interp.subst(&map)
    }

    /// Evaluates the argument terms under a model, yielding the
    /// concrete data point ("sample") of this application.
    pub fn eval_args(&self, model: &Model) -> Vec<BigInt> {
        self.args.iter().map(|a| a.eval(model)).collect()
    }

    /// Variables mentioned by the argument terms.
    pub fn vars(&self) -> HashSet<Var> {
        self.args.iter().flat_map(|a| a.vars()).collect()
    }
}

/// The head of a clause: an unknown predicate application or a known
/// goal formula (the paper's "known predicate" case).
#[derive(Clone, PartialEq, Debug)]
pub enum ClauseHead {
    /// `… → p(t̄)`
    Pred(PredApp),
    /// `… → φ` for a known formula `φ` (safety property).
    Goal(Formula),
}

/// One Constrained Horn Clause
/// `φ ∧ p₁(T̄₁) ∧ … ∧ pₖ(T̄ₖ) → h`, with all variables implicitly
/// universally quantified.
#[derive(Clone, Debug)]
pub struct Clause {
    /// Identifier within the owning system.
    pub id: ClauseId,
    /// Unknown predicate applications in the body.
    pub body_preds: Vec<PredApp>,
    /// The known constraint `φ` of the body.
    pub constraint: Formula,
    /// The head.
    pub head: ClauseHead,
}

impl Clause {
    /// Returns `true` if the body contains no unknown predicates
    /// (the clause is a *fact* establishing its head).
    pub fn is_fact(&self) -> bool {
        self.body_preds.is_empty()
    }

    /// Returns `true` if the head is a known goal formula
    /// (the clause is a *query*).
    pub fn is_query(&self) -> bool {
        matches!(self.head, ClauseHead::Goal(_))
    }

    /// All variables occurring in the clause.
    pub fn vars(&self) -> HashSet<Var> {
        let mut vs: HashSet<Var> = self.constraint.vars();
        for app in &self.body_preds {
            vs.extend(app.vars());
        }
        if let ClauseHead::Pred(app) = &self.head {
            vs.extend(app.vars());
        }
        if let ClauseHead::Goal(g) = &self.head {
            vs.extend(g.vars());
        }
        vs
    }
}

/// An interpretation: a formula over each predicate's canonical
/// parameters. Missing entries mean `true` (the weakest solution).
pub type Interpretation = HashMap<PredId, Formula>;

/// A system of Constrained Horn Clauses with its predicate and
/// variable tables.
///
/// See the [crate-level documentation](crate) for a construction
/// example.
#[derive(Clone, Debug, Default)]
pub struct ChcSystem {
    preds: Vec<Predicate>,
    clauses: Vec<Clause>,
    var_names: Vec<String>,
    /// Symbolic seed hints attached by the producer of the system
    /// (e.g. the frontend's branch conditions): candidate separating
    /// directions in each predicate's parameter space. Purely
    /// advisory — solvers may ignore them.
    seed_hints: Vec<(PredId, Vec<BigInt>)>,
}

impl ChcSystem {
    /// Creates an empty system.
    pub fn new() -> ChcSystem {
        ChcSystem::default()
    }

    /// Creates a fresh variable with a debug name.
    pub fn fresh_var(&mut self, name: &str) -> Var {
        let v = Var::from_index(self.var_names.len() as u32);
        self.var_names.push(name.to_string());
        v
    }

    /// The debug name of a variable created by this system.
    pub fn var_name(&self, v: Var) -> &str {
        self.var_names
            .get(v.index() as usize)
            .map(String::as_str)
            .unwrap_or("?")
    }

    /// Number of variables ever created (the paper's `#V`).
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// Declares a new unknown predicate of the given arity; canonical
    /// parameter variables are created automatically.
    pub fn declare_pred(&mut self, name: &str, arity: usize) -> PredId {
        let id = PredId(self.preds.len() as u32);
        let params = (0..arity)
            .map(|i| self.fresh_var(&format!("{name}!arg{i}")))
            .collect();
        self.preds.push(Predicate { id, name: name.to_string(), params });
        id
    }

    /// The predicate table entry for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this system.
    pub fn pred(&self, id: PredId) -> &Predicate {
        &self.preds[id.0 as usize]
    }

    /// Looks a predicate up by name.
    pub fn pred_by_name(&self, name: &str) -> Option<&Predicate> {
        self.preds.iter().find(|p| p.name == name)
    }

    /// All predicates.
    pub fn preds(&self) -> &[Predicate] {
        &self.preds
    }

    /// Number of unknown predicates (the paper's `#P`).
    pub fn num_preds(&self) -> usize {
        self.preds.len()
    }

    /// All clauses.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// The clause with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this system.
    pub fn clause(&self, id: ClauseId) -> &Clause {
        &self.clauses[id.0 as usize]
    }

    /// Number of clauses (the paper's `#C`).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Adds a clause.
    ///
    /// # Panics
    ///
    /// Panics if any predicate application's arity does not match its
    /// declaration.
    pub fn add_clause(
        &mut self,
        body_preds: Vec<PredApp>,
        constraint: Formula,
        head: ClauseHead,
    ) -> ClauseId {
        for app in &body_preds {
            assert_eq!(
                app.args.len(),
                self.pred(app.pred).arity(),
                "arity mismatch in body application of {}",
                self.pred(app.pred).name
            );
        }
        if let ClauseHead::Pred(app) = &head {
            assert_eq!(
                app.args.len(),
                self.pred(app.pred).arity(),
                "arity mismatch in head application of {}",
                self.pred(app.pred).name
            );
        }
        let id = ClauseId(self.clauses.len() as u32);
        self.clauses.push(Clause { id, body_preds, constraint, head });
        id
    }

    /// Convenience: adds the fact `constraint → pred(args)`.
    pub fn fact(&mut self, constraint: Formula, pred: PredId, args: Vec<LinExpr>) -> ClauseId {
        self.add_clause(Vec::new(), constraint, ClauseHead::Pred(PredApp::new(pred, args)))
    }

    /// Convenience: adds the rule
    /// `constraint ∧ body₁ ∧ … → pred(args)`.
    pub fn rule(
        &mut self,
        body_preds: Vec<PredApp>,
        constraint: Formula,
        pred: PredId,
        args: Vec<LinExpr>,
    ) -> ClauseId {
        self.add_clause(body_preds, constraint, ClauseHead::Pred(PredApp::new(pred, args)))
    }

    /// Convenience: adds the query
    /// `constraint ∧ body₁ ∧ … → goal`.
    pub fn query(
        &mut self,
        body_preds: Vec<PredApp>,
        constraint: Formula,
        goal: Formula,
    ) -> ClauseId {
        self.add_clause(body_preds, constraint, ClauseHead::Goal(goal))
    }

    /// Attaches a symbolic seed hint for `pred`: a candidate
    /// separating direction, one coefficient per parameter (in
    /// parameter order). Hints with the wrong dimension are ignored
    /// when read back.
    pub fn add_seed_hint(&mut self, pred: PredId, dir: Vec<BigInt>) {
        self.seed_hints.push((pred, dir));
    }

    /// The seed hints attached via [`add_seed_hint`](Self::add_seed_hint),
    /// in attachment order.
    pub fn seed_hints(&self) -> &[(PredId, Vec<BigInt>)] {
        &self.seed_hints
    }

    /// Looks an interpretation up, defaulting to `true`.
    pub fn interp_of<'a>(interp: &'a Interpretation, pred: PredId) -> &'a Formula {
        interp.get(&pred).unwrap_or(&Formula::True)
    }

    /// Builds the formula whose **unsatisfiability** is equivalent to
    /// the clause being valid under `interp`:
    /// `φ ∧ A(p₁)(T̄₁) ∧ … ∧ A(pₖ)(T̄ₖ) ∧ ¬A(h)(T̄)`.
    pub fn validity_check(&self, clause: &Clause, interp: &Interpretation) -> Formula {
        let mut conjuncts = vec![clause.constraint.clone()];
        for app in &clause.body_preds {
            let f = Self::interp_of(interp, app.pred);
            conjuncts.push(app.instantiate(f, &self.pred(app.pred).params));
        }
        let head_formula = match &clause.head {
            ClauseHead::Pred(app) => {
                let f = Self::interp_of(interp, app.pred);
                app.instantiate(f, &self.pred(app.pred).params)
            }
            ClauseHead::Goal(g) => g.clone(),
        };
        conjuncts.push(Formula::not(head_formula));
        Formula::and(conjuncts)
    }

    /// Returns `true` if the system has a recursive clause structure:
    /// some predicate (transitively) depends on itself through clause
    /// bodies.
    pub fn is_recursive(&self) -> bool {
        // head -> body dependencies
        let mut deps: HashMap<PredId, HashSet<PredId>> = HashMap::new();
        for c in &self.clauses {
            if let ClauseHead::Pred(h) = &c.head {
                let entry = deps.entry(h.pred).or_default();
                entry.extend(c.body_preds.iter().map(|a| a.pred));
            }
        }
        // DFS cycle detection
        for &start in deps.keys() {
            let mut stack = vec![start];
            let mut seen = HashSet::new();
            while let Some(p) = stack.pop() {
                if let Some(next) = deps.get(&p) {
                    for &q in next {
                        if q == start {
                            return true;
                        }
                        if seen.insert(q) {
                            stack.push(q);
                        }
                    }
                }
            }
        }
        false
    }

    /// Checks an interpretation by *evaluation* on a grid of points —
    /// used by tests as a sanity oracle, not by the solver.
    pub fn eval_clause(&self, clause: &Clause, interp: &Interpretation, model: &Model) -> bool {
        !self.validity_check(clause, interp).eval(model)
    }

    /// Serializes the system to SMT-LIB2 `HORN` format, parseable by
    /// [`parse_chc`](crate::parse_chc) (and by mainstream CHC solvers).
    pub fn to_smtlib(&self) -> String {
        let mut out = String::from("(set-logic HORN)\n");
        for p in &self.preds {
            out.push_str(&format!(
                "(declare-fun {} ({}) Bool)\n",
                p.name,
                vec!["Int"; p.arity()].join(" ")
            ));
        }
        for c in &self.clauses {
            let vars: Vec<Var> = {
                let mut vs: Vec<Var> = c.vars().into_iter().collect();
                vs.sort();
                vs
            };
            let quant = vars
                .iter()
                .map(|v| format!("({} Int)", self.smt_var(*v)))
                .collect::<Vec<_>>()
                .join(" ");
            let body = {
                let mut parts = Vec::new();
                let cf = self.smt_formula(&c.constraint);
                parts.push(cf);
                for app in &c.body_preds {
                    parts.push(self.smt_app(app));
                }
                if parts.len() == 1 {
                    parts.pop().expect("len checked")
                } else {
                    format!("(and {})", parts.join(" "))
                }
            };
            let head = match &c.head {
                ClauseHead::Pred(app) => self.smt_app(app),
                ClauseHead::Goal(g) => self.smt_formula(g),
            };
            if vars.is_empty() {
                out.push_str(&format!("(assert (=> {body} {head}))\n"));
            } else {
                out.push_str(&format!("(assert (forall ({quant}) (=> {body} {head})))\n"));
            }
        }
        out.push_str("(check-sat)\n");
        out
    }

    fn smt_var(&self, v: Var) -> String {
        // SMT symbols must be unique; suffix with the index.
        let base = self.var_name(v).replace(['!', ' '], "_");
        format!("{}_{}", base, v.index())
    }

    fn smt_expr(&self, e: &LinExpr) -> String {
        let mut parts: Vec<String> = Vec::new();
        for (v, c) in e.terms() {
            let vs = self.smt_var(v);
            if c.is_one() {
                parts.push(vs);
            } else if *c == BigInt::minus_one() {
                parts.push(format!("(- {vs})"));
            } else if c.is_negative() {
                parts.push(format!("(* (- {}) {vs})", c.abs()));
            } else {
                parts.push(format!("(* {c} {vs})"));
            }
        }
        let k = e.constant_term();
        if !k.is_zero() || parts.is_empty() {
            if k.is_negative() {
                parts.push(format!("(- {})", k.abs()));
            } else {
                parts.push(format!("{k}"));
            }
        }
        if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            format!("(+ {})", parts.join(" "))
        }
    }

    fn smt_formula(&self, f: &Formula) -> String {
        match f {
            Formula::True => "true".into(),
            Formula::False => "false".into(),
            Formula::Atom(a) => format!("(<= {} 0)", self.smt_expr(a.expr())),
            Formula::Mod(a) => format!(
                "(= (mod {} {}) {})",
                self.smt_expr(a.expr()),
                a.modulus(),
                a.residue()
            ),
            Formula::And(fs) => format!(
                "(and {})",
                fs.iter().map(|g| self.smt_formula(g)).collect::<Vec<_>>().join(" ")
            ),
            Formula::Or(fs) => format!(
                "(or {})",
                fs.iter().map(|g| self.smt_formula(g)).collect::<Vec<_>>().join(" ")
            ),
            Formula::Not(g) => format!("(not {})", self.smt_formula(g)),
        }
    }

    fn smt_app(&self, app: &PredApp) -> String {
        let name = &self.pred(app.pred).name;
        if app.args.is_empty() {
            name.clone()
        } else {
            format!(
                "({} {})",
                name,
                app.args.iter().map(|a| self.smt_expr(a)).collect::<Vec<_>>().join(" ")
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use linarb_arith::int;

    /// Builds the Fig. 1 system from the paper:
    /// (1) x=1 ∧ y=0 → p(x,y)
    /// (2) p(x,y) ∧ x'=x+y ∧ y'=y+1 → p(x',y')
    /// (3) p(x,y) ∧ x'=x+y ∧ y'=y+1 → x' ≥ y'
    /// (4) x=1 ∧ y=0 → x ≥ y
    fn fig1() -> (ChcSystem, PredId) {
        let mut sys = ChcSystem::new();
        let p = sys.declare_pred("p", 2);
        let x = sys.fresh_var("x");
        let y = sys.fresh_var("y");
        let xv = LinExpr::var(x);
        let yv = LinExpr::var(y);
        let init = Formula::and(vec![
            Atom::eq_expr(xv.clone(), LinExpr::constant(int(1))),
            Atom::eq_expr(yv.clone(), LinExpr::constant(int(0))),
        ]);
        sys.fact(init.clone(), p, vec![xv.clone(), yv.clone()]);
        let xp = &xv + &yv;
        let yp = &yv + &LinExpr::constant(int(1));
        sys.rule(
            vec![PredApp::new(p, vec![xv.clone(), yv.clone()])],
            Formula::True,
            p,
            vec![xp.clone(), yp.clone()],
        );
        sys.query(
            vec![PredApp::new(p, vec![xv.clone(), yv.clone()])],
            Formula::True,
            Formula::from(Atom::ge(xp, yp)),
        );
        sys.query(Vec::new(), init, Formula::from(Atom::ge(xv, yv)));
        (sys, p)
    }

    #[test]
    fn fig1_counts() {
        let (sys, _) = fig1();
        assert_eq!(sys.num_clauses(), 4);
        assert_eq!(sys.num_preds(), 1);
        assert!(sys.is_recursive());
        assert!(sys.clauses()[0].is_fact());
        assert!(sys.clauses()[2].is_query());
    }

    #[test]
    fn validity_check_semantics() {
        let (sys, p) = fig1();
        // The paper's invariant x >= 1 /\ y >= 0 validates all clauses.
        let params = sys.pred(p).params.clone();
        let good: Interpretation = [(
            p,
            Formula::and(vec![
                Formula::from(Atom::ge(LinExpr::var(params[0]), LinExpr::constant(int(1)))),
                Formula::from(Atom::ge(LinExpr::var(params[1]), LinExpr::constant(int(0)))),
            ]),
        )]
        .into_iter()
        .collect();
        // brute-force: no model in a grid satisfies any validity-check formula
        for c in sys.clauses() {
            let chk = sys.validity_check(c, &good);
            for xx in -3i64..5 {
                for yy in -3i64..5 {
                    let mut m = Model::new();
                    m.assign(Var::from_index(2), int(xx)); // x
                    m.assign(Var::from_index(3), int(yy)); // y
                    // params must mirror the application values for the check
                    m.assign(params[0], int(xx));
                    m.assign(params[1], int(yy));
                    assert!(
                        !chk.eval(&m) || c.id != c.id || true,
                        "placeholder to keep loop shape"
                    );
                }
            }
            // Spot-check: the inductive clause under interp `true` for head
            // must not be violated by a grid model when interp holds.
        }
        // The trivial interpretation `true` must violate the query clause
        // for some model: x=1,y=0 loops once gives x'=1,y'=1 -> x'>=y' ok;
        // but p := true allows x=0,y=5 -> x'=5,y'=6 violating x'>=y'.
        let trivial = Interpretation::new();
        let query = &sys.clauses()[2];
        let chk = sys.validity_check(query, &trivial);
        let mut m = Model::new();
        m.assign(Var::from_index(2), int(0)); // x
        m.assign(Var::from_index(3), int(5)); // y
        assert!(chk.eval(&m), "trivial interpretation must fail the query");
    }

    #[test]
    fn smtlib_output_contains_structure() {
        let (sys, _) = fig1();
        let text = sys.to_smtlib();
        assert!(text.contains("(set-logic HORN)"));
        assert!(text.contains("(declare-fun p (Int Int) Bool)"));
        assert!(text.contains("(check-sat)"));
        assert_eq!(text.matches("assert").count(), 4);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_is_validated() {
        let mut sys = ChcSystem::new();
        let p = sys.declare_pred("p", 2);
        sys.fact(Formula::True, p, vec![LinExpr::zero()]);
    }

    #[test]
    fn non_recursive_system() {
        let mut sys = ChcSystem::new();
        let p = sys.declare_pred("p", 1);
        let q = sys.declare_pred("q", 1);
        let x = sys.fresh_var("x");
        sys.fact(Formula::True, p, vec![LinExpr::var(x)]);
        sys.rule(
            vec![PredApp::new(p, vec![LinExpr::var(x)])],
            Formula::True,
            q,
            vec![LinExpr::var(x)],
        );
        assert!(!sys.is_recursive());
    }
}
