//! Models: assignments of integer values to variables.

use crate::var::Var;
use linarb_arith::BigInt;
use std::collections::HashMap;
use std::fmt;

/// A (partial) assignment of integer values to variables.
///
/// Variables with no explicit value read as `0`; this matches the
/// convention that SMT models may leave don't-care variables
/// unassigned.
///
/// ```
/// use linarb_arith::int;
/// use linarb_logic::{Model, Var};
/// let mut m = Model::new();
/// m.assign(Var::from_index(0), int(7));
/// assert_eq!(m.value(Var::from_index(0)), int(7));
/// assert_eq!(m.value(Var::from_index(1)), int(0));
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Model {
    values: HashMap<Var, BigInt>,
}

impl Model {
    /// An empty model (everything reads as `0`).
    pub fn new() -> Model {
        Model::default()
    }

    /// Assigns `value` to `var`, returning the previous value if set.
    pub fn assign(&mut self, var: Var, value: BigInt) -> Option<BigInt> {
        self.values.insert(var, value)
    }

    /// The value of `var` (`0` when unassigned).
    pub fn value(&self, var: Var) -> BigInt {
        self.values.get(&var).cloned().unwrap_or_else(BigInt::zero)
    }

    /// The value of `var`, or `None` if unassigned.
    pub fn get(&self, var: Var) -> Option<&BigInt> {
        self.values.get(&var)
    }

    /// Number of explicitly assigned variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if no variable is explicitly assigned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(variable, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, &BigInt)> + '_ {
        self.values.iter().map(|(v, x)| (*v, x))
    }
}

impl FromIterator<(Var, BigInt)> for Model {
    fn from_iter<I: IntoIterator<Item = (Var, BigInt)>>(iter: I) -> Model {
        Model { values: iter.into_iter().collect() }
    }
}

impl Extend<(Var, BigInt)> for Model {
    fn extend<I: IntoIterator<Item = (Var, BigInt)>>(&mut self, iter: I) {
        self.values.extend(iter);
    }
}

impl fmt::Debug for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut entries: Vec<_> = self.values.iter().collect();
        entries.sort_by_key(|(v, _)| **v);
        write!(f, "{{")?;
        for (i, (v, x)) in entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}={x}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linarb_arith::int;

    #[test]
    fn default_is_zero() {
        let m = Model::new();
        assert!(m.is_empty());
        assert_eq!(m.value(Var::from_index(42)), int(0));
        assert_eq!(m.get(Var::from_index(42)), None);
    }

    #[test]
    fn assign_and_overwrite() {
        let mut m = Model::new();
        assert_eq!(m.assign(Var::from_index(0), int(1)), None);
        assert_eq!(m.assign(Var::from_index(0), int(2)), Some(int(1)));
        assert_eq!(m.value(Var::from_index(0)), int(2));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn debug_is_sorted_nonempty() {
        let mut m = Model::new();
        m.assign(Var::from_index(1), int(-1));
        m.assign(Var::from_index(0), int(3));
        assert_eq!(format!("{m:?}"), "{v0=3, v1=-1}");
        assert_eq!(format!("{:?}", Model::new()), "{}");
    }
}
