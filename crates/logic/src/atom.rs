//! Normalized linear atoms.

use crate::linexpr::LinExpr;
use crate::model::Model;
use crate::var::Var;
use linarb_arith::BigInt;
use std::collections::HashMap;
use std::fmt;

/// A linear atom, kept in the normalized form `e ≤ 0` where
/// `e = Σ aᵢ·xᵢ + c`.
///
/// Normalization divides the coefficients by their GCD `g` and
/// *tightens* the constant to `⌊c/g⌋` — sound and complete over the
/// integers. Constant expressions collapse to the canonical trivially
/// true atom `0 ≤ 0` or trivially false atom `1 ≤ 0`.
///
/// Integer atoms are closed under negation:
/// `¬(e ≤ 0)  ≡  e ≥ 1  ≡  (-e + 1) ≤ 0`.
///
/// ```
/// use linarb_arith::int;
/// use linarb_logic::{Atom, LinExpr, Var};
/// let x = Var::from_index(0);
/// // 2x <= 5 tightens to x <= 2
/// let a = Atom::le(LinExpr::var(x).scale(&int(2)), LinExpr::constant(int(5)));
/// assert_eq!(a.to_string(), "v0 - 2 <= 0");
/// assert_eq!(a.negate().to_string(), "-v0 + 3 <= 0"); // x >= 3
/// assert_eq!(a.negate().negate(), a);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// The expression `e` of `e ≤ 0`, normalized.
    expr: LinExpr,
}

impl Atom {
    /// The trivially true atom `0 ≤ 0`.
    pub fn truth() -> Atom {
        Atom { expr: LinExpr::zero() }
    }

    /// The trivially false atom `1 ≤ 0`.
    pub fn falsity() -> Atom {
        Atom { expr: LinExpr::constant(BigInt::one()) }
    }

    /// The atom `e ≤ 0`, normalized.
    pub fn le_zero(expr: LinExpr) -> Atom {
        if expr.is_constant() {
            return if expr.constant_term().is_positive() {
                Atom::falsity()
            } else {
                Atom::truth()
            };
        }
        let g = expr.coeff_gcd();
        debug_assert!(g.is_positive());
        if g.is_one() {
            return Atom { expr };
        }
        // (g·e' + c ≤ 0)  ⟺  (e' ≤ ⌊-c/g⌋)  ⟺  (e' - ⌊-c/g⌋ ≤ 0)
        let c = expr.constant_term().clone();
        let mut tight = LinExpr::from_terms(
            expr.terms().map(|(v, a)| (v, a / &g)),
            BigInt::zero(),
        );
        let bound = (-&c).div_mod_floor(&g).0;
        tight.add_constant(&-bound);
        Atom { expr: tight }
    }

    /// The atom `lhs ≤ rhs`.
    pub fn le(lhs: LinExpr, rhs: LinExpr) -> Atom {
        Atom::le_zero(&lhs - &rhs)
    }

    /// The atom `lhs ≥ rhs`.
    pub fn ge(lhs: LinExpr, rhs: LinExpr) -> Atom {
        Atom::le(rhs, lhs)
    }

    /// The atom `lhs < rhs` (integers: `lhs ≤ rhs - 1`).
    pub fn lt(lhs: LinExpr, rhs: LinExpr) -> Atom {
        let mut e = &lhs - &rhs;
        e.add_constant(&BigInt::one());
        Atom::le_zero(e)
    }

    /// The atom `lhs > rhs` (integers: `lhs ≥ rhs + 1`).
    pub fn gt(lhs: LinExpr, rhs: LinExpr) -> Atom {
        Atom::lt(rhs, lhs)
    }

    /// The *pair* of atoms whose conjunction is `lhs = rhs`.
    pub fn eq(lhs: LinExpr, rhs: LinExpr) -> (Atom, Atom) {
        (Atom::le(lhs.clone(), rhs.clone()), Atom::ge(lhs, rhs))
    }

    /// Convenience: `lhs = rhs` is used so often that callers may want
    /// the conjunction directly; this returns the two-atom conjunction
    /// as a [`Formula`](crate::Formula) via `From`.
    pub fn eq_expr(lhs: LinExpr, rhs: LinExpr) -> crate::Formula {
        let (a, b) = Atom::eq(lhs, rhs);
        crate::Formula::and(vec![crate::Formula::from(a), crate::Formula::from(b)])
    }

    /// The negation `¬(e ≤ 0) ≡ (-e + 1 ≤ 0)`.
    pub fn negate(&self) -> Atom {
        let mut e = -&self.expr;
        e.add_constant(&BigInt::one());
        Atom::le_zero(e)
    }

    /// The underlying normalized expression `e` of `e ≤ 0`.
    pub fn expr(&self) -> &LinExpr {
        &self.expr
    }

    /// Returns `true` if the atom is the trivial truth `0 ≤ 0`.
    pub fn is_truth(&self) -> bool {
        self.expr.is_constant() && !self.expr.constant_term().is_positive()
    }

    /// Returns `true` if the atom is the trivial falsity `1 ≤ 0`.
    pub fn is_falsity(&self) -> bool {
        self.expr.is_constant() && self.expr.constant_term().is_positive()
    }

    /// Evaluates the atom under a model.
    pub fn holds(&self, model: &Model) -> bool {
        !self.expr.eval(model).is_positive()
    }

    /// Substitutes variables by expressions.
    pub fn subst(&self, map: &HashMap<Var, LinExpr>) -> Atom {
        Atom::le_zero(self.expr.subst(map))
    }

    /// Renames variables.
    pub fn rename(&self, map: &HashMap<Var, Var>) -> Atom {
        Atom::le_zero(self.expr.rename(map))
    }

    /// Iterates the variables mentioned.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.expr.vars()
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} <= 0", self.expr)
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linarb_arith::int;

    fn v(i: u32) -> Var {
        Var::from_index(i)
    }

    fn x() -> LinExpr {
        LinExpr::var(v(0))
    }

    fn c(k: i64) -> LinExpr {
        LinExpr::constant(int(k))
    }

    #[test]
    fn constant_atoms_collapse() {
        assert!(Atom::le(c(3), c(5)).is_truth());
        assert!(Atom::le(c(5), c(3)).is_falsity());
        assert!(Atom::le(c(5), c(5)).is_truth());
        assert!(Atom::lt(c(5), c(5)).is_falsity());
    }

    #[test]
    fn gcd_tightening() {
        // 2x <= 5  -->  x <= 2
        let a = Atom::le(x().scale(&int(2)), c(5));
        assert_eq!(a.expr().coeff(v(0)), int(1));
        assert_eq!(a.expr().constant_term(), &int(-2));
        // -3x <= -7  -->  -x <= -3 (x >= 3, since x >= 7/3)
        let b = Atom::le(x().scale(&int(-3)), c(-7));
        assert_eq!(b.expr().coeff(v(0)), int(-1));
        assert_eq!(b.expr().constant_term(), &int(3));
    }

    #[test]
    fn negation_is_involution_for_unit_gcd() {
        let a = Atom::le(x(), c(4));
        let n = a.negate();
        // not(x <= 4) is x >= 5
        let mut m = Model::new();
        m.assign(v(0), int(4));
        assert!(a.holds(&m) && !n.holds(&m));
        m.assign(v(0), int(5));
        assert!(!a.holds(&m) && n.holds(&m));
        assert_eq!(n.negate(), a);
    }

    #[test]
    fn strict_conversion() {
        // x < 3 === x <= 2
        let a = Atom::lt(x(), c(3));
        let mut m = Model::new();
        m.assign(v(0), int(2));
        assert!(a.holds(&m));
        m.assign(v(0), int(3));
        assert!(!a.holds(&m));
    }

    #[test]
    fn eq_pair_conjunction() {
        let (le, ge) = Atom::eq(x(), c(3));
        let mut m = Model::new();
        m.assign(v(0), int(3));
        assert!(le.holds(&m) && ge.holds(&m));
        m.assign(v(0), int(4));
        assert!(!(le.holds(&m) && ge.holds(&m)));
    }

    #[test]
    fn holds_matches_semantics() {
        // 2x - 3y + 1 <= 0
        let e = LinExpr::from_terms([(v(0), int(2)), (v(1), int(-3))], int(1));
        let a = Atom::le_zero(e);
        for xx in -4i64..4 {
            for yy in -4i64..4 {
                let mut m = Model::new();
                m.assign(v(0), int(xx));
                m.assign(v(1), int(yy));
                assert_eq!(a.holds(&m), 2 * xx - 3 * yy + 1 <= 0, "x={xx} y={yy}");
            }
        }
    }
}
