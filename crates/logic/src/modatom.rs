//! Divisibility atoms: `expr ≡ residue (mod modulus)`.
//!
//! Linear integer arithmetic cannot express "x is even" as a single
//! linear atom, but the paper's decision-tree layer uses `mod`
//! features (§3.3, *Beyond Polyhedra*), so learned invariants may
//! contain congruences. [`ModAtom`] carries them through the formula
//! language; the SMT layer lowers them to fresh quotient/remainder
//! variables before solving (sound for satisfiability checks, which is
//! the only way formulas are ever discharged).

use crate::linexpr::LinExpr;
use crate::model::Model;
use crate::var::Var;
use linarb_arith::BigInt;
use std::collections::HashMap;
use std::fmt;

/// The congruence `expr ≡ residue (mod modulus)` with
/// `modulus ≥ 2` and `0 ≤ residue < modulus`.
///
/// ```
/// use linarb_arith::int;
/// use linarb_logic::{LinExpr, Model, ModAtom, Var};
/// let x = Var::from_index(0);
/// let even = ModAtom::new(LinExpr::var(x), int(2), int(0));
/// let mut m = Model::new();
/// m.assign(x, int(-4));
/// assert!(even.holds(&m));
/// m.assign(x, int(7));
/// assert!(!even.holds(&m));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ModAtom {
    expr: LinExpr,
    modulus: BigInt,
    residue: BigInt,
}

impl ModAtom {
    /// Creates a congruence; the residue is normalized into
    /// `[0, modulus)`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus < 2`.
    pub fn new(expr: LinExpr, modulus: BigInt, residue: BigInt) -> ModAtom {
        assert!(modulus >= BigInt::from(2), "modulus must be at least 2");
        let residue = residue.mod_floor(&modulus);
        ModAtom { expr, modulus, residue }
    }

    /// The left-hand expression.
    pub fn expr(&self) -> &LinExpr {
        &self.expr
    }

    /// The modulus (`≥ 2`).
    pub fn modulus(&self) -> &BigInt {
        &self.modulus
    }

    /// The residue, in `[0, modulus)`.
    pub fn residue(&self) -> &BigInt {
        &self.residue
    }

    /// Evaluates under a model.
    pub fn holds(&self, model: &Model) -> bool {
        self.expr.eval(model).mod_floor(&self.modulus) == self.residue
    }

    /// Substitutes variables by expressions.
    pub fn subst(&self, map: &HashMap<Var, LinExpr>) -> ModAtom {
        ModAtom::new(self.expr.subst(map), self.modulus.clone(), self.residue.clone())
    }

    /// The congruences asserting every *other* residue — the finite
    /// expansion of this atom's negation.
    pub fn complement(&self) -> Vec<ModAtom> {
        let mut out = Vec::new();
        let mut r = BigInt::zero();
        while r < self.modulus {
            if r != self.residue {
                out.push(ModAtom {
                    expr: self.expr.clone(),
                    modulus: self.modulus.clone(),
                    residue: r.clone(),
                });
            }
            r = &r + &BigInt::one();
        }
        out
    }

    /// Returns `Some(truth value)` if the expression is constant.
    pub fn const_value(&self) -> Option<bool> {
        if self.expr.is_constant() {
            Some(self.expr.constant_term().mod_floor(&self.modulus) == self.residue)
        } else {
            None
        }
    }

    /// Iterates the variables mentioned.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.expr.vars()
    }
}

impl fmt::Display for ModAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} mod {} = {}", self.expr, self.modulus, self.residue)
    }
}

impl fmt::Debug for ModAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linarb_arith::int;

    fn x() -> LinExpr {
        LinExpr::var(Var::from_index(0))
    }

    #[test]
    fn residue_normalized() {
        let a = ModAtom::new(x(), int(3), int(-1));
        assert_eq!(a.residue(), &int(2));
        let b = ModAtom::new(x(), int(3), int(7));
        assert_eq!(b.residue(), &int(1));
    }

    #[test]
    #[should_panic(expected = "modulus must be at least 2")]
    fn small_modulus_rejected() {
        let _ = ModAtom::new(x(), int(1), int(0));
    }

    #[test]
    fn holds_matches_mod_floor() {
        let a = ModAtom::new(x(), int(2), int(0));
        for v in -5i64..=5 {
            let mut m = Model::new();
            m.assign(Var::from_index(0), int(v));
            assert_eq!(a.holds(&m), v.rem_euclid(2) == 0, "v={v}");
        }
    }

    #[test]
    fn complement_partitions() {
        let a = ModAtom::new(x(), int(3), int(1));
        let comp = a.complement();
        assert_eq!(comp.len(), 2);
        for v in -4i64..=4 {
            let mut m = Model::new();
            m.assign(Var::from_index(0), int(v));
            let in_a = a.holds(&m);
            let in_comp = comp.iter().any(|c| c.holds(&m));
            assert!(in_a != in_comp, "exactly one side must hold at v={v}");
        }
    }

    #[test]
    fn const_folding() {
        let a = ModAtom::new(LinExpr::constant(int(4)), int(2), int(0));
        assert_eq!(a.const_value(), Some(true));
        let b = ModAtom::new(LinExpr::constant(int(5)), int(2), int(0));
        assert_eq!(b.const_value(), Some(false));
        assert_eq!(ModAtom::new(x(), int(2), int(0)).const_value(), None);
    }
}
