//! First-order variables.

use std::fmt;

/// An integer-sorted first-order variable, identified by a dense index.
///
/// Variables are created through [`ChcSystem::fresh_var`](crate::ChcSystem::fresh_var) (or any other
/// context that hands out fresh indices); the index is the identity.
/// Human-readable names live in the owning [`ChcSystem`](crate::ChcSystem)'s name table —
/// a bare `Var` displays as `v{index}`.
///
/// ```
/// use linarb_logic::Var;
/// let v = Var::from_index(3);
/// assert_eq!(v.to_string(), "v3");
/// assert_eq!(v.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Creates a variable with the given raw index.
    pub fn from_index(index: u32) -> Var {
        Var(index)
    }

    /// The raw index of this variable.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_index() {
        assert_eq!(Var::from_index(0), Var::from_index(0));
        assert_ne!(Var::from_index(0), Var::from_index(1));
        assert!(Var::from_index(0) < Var::from_index(1));
    }
}
