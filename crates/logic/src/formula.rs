//! Quantifier-free formulas over linear atoms.

use crate::atom::Atom;
use crate::linexpr::LinExpr;
use crate::modatom::ModAtom;
use crate::model::Model;
use crate::var::Var;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A quantifier-free boolean combination of linear [`Atom`]s.
///
/// `Formula` is a plain tree; [`Formula::simplify`] flattens nested
/// conjunctions/disjunctions and removes trivial subformulas, and
/// [`Formula::nnf`] pushes negations down to the atoms (which are
/// closed under negation over the integers).
///
/// ```
/// use linarb_arith::int;
/// use linarb_logic::{Atom, Formula, LinExpr, Model, Var};
/// let x = Var::from_index(0);
/// let f = Formula::or(vec![
///     Formula::from(Atom::le(LinExpr::var(x), LinExpr::constant(int(0)))),
///     Formula::from(Atom::ge(LinExpr::var(x), LinExpr::constant(int(10)))),
/// ]);
/// let mut m = Model::new();
/// m.assign(x, int(5));
/// assert!(!f.eval(&m));
/// m.assign(x, int(12));
/// assert!(f.eval(&m));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// The constant `true`.
    True,
    /// The constant `false`.
    False,
    /// A linear atom.
    Atom(Atom),
    /// A divisibility atom `e ≡ r (mod k)`.
    Mod(ModAtom),
    /// N-ary conjunction.
    And(Vec<Formula>),
    /// N-ary disjunction.
    Or(Vec<Formula>),
    /// Negation.
    Not(Box<Formula>),
}

impl Formula {
    /// The constant `true`.
    pub fn tru() -> Formula {
        Formula::True
    }

    /// The constant `false`.
    pub fn fls() -> Formula {
        Formula::False
    }

    /// Conjunction; empty input yields `true`.
    pub fn and(mut fs: Vec<Formula>) -> Formula {
        if fs.iter().any(|f| matches!(f, Formula::False)) {
            return Formula::False;
        }
        fs.retain(|f| !matches!(f, Formula::True));
        match fs.len() {
            0 => Formula::True,
            1 => fs.pop().expect("len checked"),
            _ => Formula::And(fs),
        }
    }

    /// Disjunction; empty input yields `false`.
    pub fn or(mut fs: Vec<Formula>) -> Formula {
        if fs.iter().any(|f| matches!(f, Formula::True)) {
            return Formula::True;
        }
        fs.retain(|f| !matches!(f, Formula::False));
        match fs.len() {
            0 => Formula::False,
            1 => fs.pop().expect("len checked"),
            _ => Formula::Or(fs),
        }
    }

    /// Negation (with trivial constant folding).
    pub fn not(f: Formula) -> Formula {
        match f {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => *inner,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// The implication `premise → conclusion` as `¬premise ∨ conclusion`.
    pub fn implies(premise: Formula, conclusion: Formula) -> Formula {
        Formula::or(vec![Formula::not(premise), conclusion])
    }

    /// Evaluates under a model (unassigned variables read `0`).
    pub fn eval(&self, model: &Model) -> bool {
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Atom(a) => a.holds(model),
            Formula::Mod(a) => a.holds(model),
            Formula::And(fs) => fs.iter().all(|f| f.eval(model)),
            Formula::Or(fs) => fs.iter().any(|f| f.eval(model)),
            Formula::Not(f) => !f.eval(model),
        }
    }

    /// Negation normal form: negations are pushed into the atoms.
    /// The result contains no [`Formula::Not`] nodes.
    pub fn nnf(&self) -> Formula {
        fn go(f: &Formula, neg: bool) -> Formula {
            match (f, neg) {
                (Formula::True, false) | (Formula::False, true) => Formula::True,
                (Formula::True, true) | (Formula::False, false) => Formula::False,
                (Formula::Atom(a), false) => Formula::Atom(a.clone()),
                (Formula::Atom(a), true) => Formula::Atom(a.negate()),
                (Formula::Mod(a), false) => Formula::Mod(a.clone()),
                (Formula::Mod(a), true) => Formula::or(
                    a.complement().into_iter().map(Formula::Mod).collect(),
                ),
                (Formula::And(fs), false) => {
                    Formula::and(fs.iter().map(|f| go(f, false)).collect())
                }
                (Formula::And(fs), true) => {
                    Formula::or(fs.iter().map(|f| go(f, true)).collect())
                }
                (Formula::Or(fs), false) => {
                    Formula::or(fs.iter().map(|f| go(f, false)).collect())
                }
                (Formula::Or(fs), true) => {
                    Formula::and(fs.iter().map(|f| go(f, true)).collect())
                }
                (Formula::Not(inner), n) => go(inner, !n),
            }
        }
        go(self, false)
    }

    /// Flattens nested and/or nodes, removes duplicate children and
    /// trivial constants. Purely structural; no theory reasoning.
    pub fn simplify(&self) -> Formula {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) | Formula::Mod(_) => self.clone(),
            Formula::Not(f) => Formula::not(f.simplify()),
            Formula::And(fs) => {
                let mut out: Vec<Formula> = Vec::new();
                let mut seen = HashSet::new();
                for f in fs {
                    match f.simplify() {
                        Formula::True => {}
                        Formula::False => return Formula::False,
                        Formula::And(inner) => {
                            for g in inner {
                                if seen.insert(g.clone()) {
                                    out.push(g);
                                }
                            }
                        }
                        g => {
                            if seen.insert(g.clone()) {
                                out.push(g);
                            }
                        }
                    }
                }
                Formula::and(out)
            }
            Formula::Or(fs) => {
                let mut out: Vec<Formula> = Vec::new();
                let mut seen = HashSet::new();
                for f in fs {
                    match f.simplify() {
                        Formula::False => {}
                        Formula::True => return Formula::True,
                        Formula::Or(inner) => {
                            for g in inner {
                                if seen.insert(g.clone()) {
                                    out.push(g);
                                }
                            }
                        }
                        g => {
                            if seen.insert(g.clone()) {
                                out.push(g);
                            }
                        }
                    }
                }
                Formula::or(out)
            }
        }
    }

    /// Collects the distinct atoms appearing in the formula, in
    /// first-occurrence order (negations are *not* pushed first).
    pub fn atoms(&self) -> Vec<Atom> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        fn walk(f: &Formula, seen: &mut HashSet<Atom>, out: &mut Vec<Atom>) {
            match f {
                Formula::Atom(a) => {
                    if seen.insert(a.clone()) {
                        out.push(a.clone());
                    }
                }
                Formula::And(fs) | Formula::Or(fs) => {
                    for g in fs {
                        walk(g, seen, out);
                    }
                }
                Formula::Not(g) => walk(g, seen, out),
                _ => {}
            }
        }
        walk(self, &mut seen, &mut out);
        out
    }

    /// Collects the distinct divisibility atoms appearing in the
    /// formula, in first-occurrence order.
    pub fn mod_atoms(&self) -> Vec<ModAtom> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        fn walk(f: &Formula, seen: &mut HashSet<ModAtom>, out: &mut Vec<ModAtom>) {
            match f {
                Formula::Mod(a) => {
                    if seen.insert(a.clone()) {
                        out.push(a.clone());
                    }
                }
                Formula::And(fs) | Formula::Or(fs) => {
                    for g in fs {
                        walk(g, seen, out);
                    }
                }
                Formula::Not(g) => walk(g, seen, out),
                _ => {}
            }
        }
        walk(self, &mut seen, &mut out);
        out
    }

    /// Collects the free variables.
    pub fn vars(&self) -> HashSet<Var> {
        let mut out = HashSet::new();
        for a in self.atoms() {
            out.extend(a.vars());
        }
        for a in self.mod_atoms() {
            out.extend(a.vars());
        }
        out
    }

    /// Substitutes variables by linear expressions.
    pub fn subst(&self, map: &HashMap<Var, LinExpr>) -> Formula {
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Atom(a) => {
                let s = a.subst(map);
                if s.is_truth() {
                    Formula::True
                } else if s.is_falsity() {
                    Formula::False
                } else {
                    Formula::Atom(s)
                }
            }
            Formula::Mod(a) => {
                let s = a.subst(map);
                match s.const_value() {
                    Some(true) => Formula::True,
                    Some(false) => Formula::False,
                    None => Formula::Mod(s),
                }
            }
            Formula::And(fs) => Formula::and(fs.iter().map(|f| f.subst(map)).collect()),
            Formula::Or(fs) => Formula::or(fs.iter().map(|f| f.subst(map)).collect()),
            Formula::Not(f) => Formula::not(f.subst(map)),
        }
    }

    /// Renames variables.
    pub fn rename(&self, map: &HashMap<Var, Var>) -> Formula {
        let exprs: HashMap<Var, LinExpr> =
            map.iter().map(|(k, v)| (*k, LinExpr::var(*v))).collect();
        self.subst(&exprs)
    }

    /// Converts to disjunctive normal form as a list of cubes (each
    /// cube a conjunction of atoms). Returns `None` if the number of
    /// cubes would exceed `limit` — DNF can blow up exponentially.
    pub fn to_dnf(&self, limit: usize) -> Option<Vec<Vec<Atom>>> {
        fn go(f: &Formula, limit: usize) -> Option<Vec<Vec<Atom>>> {
            match f {
                Formula::True => Some(vec![Vec::new()]),
                Formula::False => Some(Vec::new()),
                Formula::Atom(a) => Some(vec![vec![a.clone()]]),
                Formula::Mod(_) => None,
                Formula::Or(fs) => {
                    let mut cubes = Vec::new();
                    for g in fs {
                        cubes.extend(go(g, limit)?);
                        if cubes.len() > limit {
                            return None;
                        }
                    }
                    Some(cubes)
                }
                Formula::And(fs) => {
                    let mut cubes: Vec<Vec<Atom>> = vec![Vec::new()];
                    for g in fs {
                        let sub = go(g, limit)?;
                        let mut next = Vec::new();
                        for c in &cubes {
                            for s in &sub {
                                let mut merged = c.clone();
                                merged.extend(s.iter().cloned());
                                next.push(merged);
                                if next.len() > limit {
                                    return None;
                                }
                            }
                        }
                        cubes = next;
                    }
                    Some(cubes)
                }
                Formula::Not(_) => unreachable!("to_dnf runs on NNF"),
            }
        }
        go(&self.nnf(), limit)
    }

    /// Size of the formula tree (number of nodes); a rough complexity
    /// measure used by tests and benchmarks.
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) | Formula::Mod(_) => 1,
            Formula::And(fs) | Formula::Or(fs) => 1 + fs.iter().map(Formula::size).sum::<usize>(),
            Formula::Not(f) => 1 + f.size(),
        }
    }
}

impl From<ModAtom> for Formula {
    fn from(a: ModAtom) -> Formula {
        match a.const_value() {
            Some(true) => Formula::True,
            Some(false) => Formula::False,
            None => Formula::Mod(a),
        }
    }
}

impl From<Atom> for Formula {
    fn from(a: Atom) -> Formula {
        if a.is_truth() {
            Formula::True
        } else if a.is_falsity() {
            Formula::False
        } else {
            Formula::Atom(a)
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Atom(a) => write!(f, "({a})"),
            Formula::Mod(a) => write!(f, "({a})"),
            Formula::And(fs) => {
                write!(f, "(and")?;
                for g in fs {
                    write!(f, " {g}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                write!(f, "(or")?;
                for g in fs {
                    write!(f, " {g}")?;
                }
                write!(f, ")")
            }
            Formula::Not(g) => write!(f, "(not {g})"),
        }
    }
}

impl fmt::Debug for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linarb_arith::int;

    fn v(i: u32) -> Var {
        Var::from_index(i)
    }

    fn le(i: u32, k: i64) -> Formula {
        Formula::from(Atom::le(LinExpr::var(v(i)), LinExpr::constant(int(k))))
    }

    #[test]
    fn constructors_fold_constants() {
        assert_eq!(Formula::and(vec![]), Formula::True);
        assert_eq!(Formula::or(vec![]), Formula::False);
        assert_eq!(Formula::and(vec![Formula::True, le(0, 1)]), le(0, 1));
        assert_eq!(Formula::and(vec![Formula::False, le(0, 1)]), Formula::False);
        assert_eq!(Formula::or(vec![Formula::True, le(0, 1)]), Formula::True);
        assert_eq!(Formula::not(Formula::not(le(0, 1))), le(0, 1));
    }

    #[test]
    fn nnf_eliminates_not() {
        let f = Formula::not(Formula::and(vec![le(0, 1), Formula::not(le(1, 2))]));
        let g = f.nnf();
        fn has_not(f: &Formula) -> bool {
            match f {
                Formula::Not(_) => true,
                Formula::And(fs) | Formula::Or(fs) => fs.iter().any(has_not),
                _ => false,
            }
        }
        assert!(!has_not(&g));
        // semantics preserved on a grid
        for x in -3i64..4 {
            for y in -3i64..4 {
                let mut m = Model::new();
                m.assign(v(0), int(x));
                m.assign(v(1), int(y));
                assert_eq!(f.eval(&m), g.eval(&m), "x={x} y={y}");
            }
        }
    }

    #[test]
    fn simplify_flattens_and_dedups() {
        let f = Formula::And(vec![
            le(0, 1),
            Formula::And(vec![le(0, 1), le(1, 2)]),
            Formula::True,
        ]);
        let s = f.simplify();
        assert_eq!(s, Formula::And(vec![le(0, 1), le(1, 2)]));
    }

    #[test]
    fn implies_semantics() {
        let f = Formula::implies(le(0, 0), le(1, 0));
        let mut m = Model::new();
        m.assign(v(0), int(5)); // premise false
        m.assign(v(1), int(5));
        assert!(f.eval(&m));
        m.assign(v(0), int(0)); // premise true, conclusion false
        assert!(!f.eval(&m));
        m.assign(v(1), int(0)); // both true
        assert!(f.eval(&m));
    }

    #[test]
    fn dnf_shapes() {
        // (a or b) and c  -> two cubes
        let f = Formula::and(vec![Formula::or(vec![le(0, 0), le(1, 0)]), le(2, 0)]);
        let cubes = f.to_dnf(16).unwrap();
        assert_eq!(cubes.len(), 2);
        assert!(cubes.iter().all(|c| c.len() == 2));
        assert_eq!(Formula::fls().to_dnf(16).unwrap().len(), 0);
        assert_eq!(Formula::tru().to_dnf(16).unwrap(), vec![Vec::new()]);
    }

    #[test]
    fn dnf_respects_limit() {
        // (a1 or b1) and ... and (a12 or b12) has 4096 cubes
        let mut fs = Vec::new();
        for i in 0..12 {
            fs.push(Formula::or(vec![le(2 * i, 0), le(2 * i + 1, 0)]));
        }
        let f = Formula::and(fs);
        assert!(f.to_dnf(100).is_none());
        assert!(f.to_dnf(5000).is_some());
    }

    #[test]
    fn subst_folds_constants() {
        let f = le(0, 1); // x <= 1
        let mut map = HashMap::new();
        map.insert(v(0), LinExpr::constant(int(0)));
        assert_eq!(f.subst(&map), Formula::True);
        map.insert(v(0), LinExpr::constant(int(2)));
        assert_eq!(f.subst(&map), Formula::False);
    }

    #[test]
    fn vars_collects() {
        let f = Formula::and(vec![le(0, 1), le(3, 0)]);
        let vs = f.vars();
        assert!(vs.contains(&v(0)) && vs.contains(&v(3)));
        assert_eq!(vs.len(), 2);
    }
}
