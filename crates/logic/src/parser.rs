//! Parser for the SMT-LIB2 `HORN` fragment.
//!
//! Supports the clause shapes emitted by SeaHorn/CHC-COMP and by
//! [`ChcSystem::to_smtlib`]: `declare-fun` of `Int → Bool` predicates,
//! `assert` of (optionally `forall`-quantified) implications whose
//! bodies mix a linear constraint with predicate applications, and
//! `mod`/`div` by positive constants (lowered to fresh variables with
//! defining constraints).

use crate::atom::Atom;
use crate::chc::{ChcSystem, PredApp, PredId};
use crate::formula::Formula;
use crate::linexpr::LinExpr;
use crate::var::Var;
use linarb_arith::BigInt;
use std::collections::HashMap;
use std::fmt;

/// Error produced when CHC parsing fails; carries a human-readable
/// description of the offending construct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseChcError {
    msg: String,
}

impl ParseChcError {
    fn new(msg: impl Into<String>) -> ParseChcError {
        ParseChcError { msg: msg.into() }
    }
}

impl fmt::Display for ParseChcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CHC parse error: {}", self.msg)
    }
}

impl std::error::Error for ParseChcError {}

// --------------------------------------------------------------- s-expr

#[derive(Debug, Clone, PartialEq)]
enum Sexp {
    Sym(String),
    List(Vec<Sexp>),
}

fn tokenize(input: &str) -> Result<Vec<String>, ParseChcError> {
    let mut toks = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ';' => {
                for n in chars.by_ref() {
                    if n == '\n' {
                        break;
                    }
                }
            }
            '(' | ')' => {
                toks.push(c.to_string());
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '|' => {
                // quoted symbol
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('|') => break,
                        Some(ch) => s.push(ch),
                        None => return Err(ParseChcError::new("unterminated quoted symbol")),
                    }
                }
                toks.push(s);
            }
            _ => {
                let mut s = String::new();
                while let Some(&n) = chars.peek() {
                    if n.is_whitespace() || n == '(' || n == ')' || n == ';' {
                        break;
                    }
                    s.push(n);
                    chars.next();
                }
                toks.push(s);
            }
        }
    }
    Ok(toks)
}

fn parse_sexps(tokens: &[String]) -> Result<Vec<Sexp>, ParseChcError> {
    let mut stack: Vec<Vec<Sexp>> = vec![Vec::new()];
    for t in tokens {
        match t.as_str() {
            "(" => stack.push(Vec::new()),
            ")" => {
                let done = stack.pop().ok_or_else(|| ParseChcError::new("unbalanced ')'"))?;
                stack
                    .last_mut()
                    .ok_or_else(|| ParseChcError::new("unbalanced ')'"))?
                    .push(Sexp::List(done));
            }
            s => stack
                .last_mut()
                .expect("stack never empty here")
                .push(Sexp::Sym(s.to_string())),
        }
    }
    if stack.len() != 1 {
        return Err(ParseChcError::new("unbalanced '('"));
    }
    Ok(stack.pop().expect("len checked"))
}

// --------------------------------------------------------------- parser

struct ClauseCtx<'a> {
    sys: &'a mut ChcSystem,
    scope: HashMap<String, Var>,
    /// Extra constraints from `mod`/`div` lowering.
    defs: Vec<Formula>,
}

impl ClauseCtx<'_> {
    fn lookup(&self, name: &str) -> Result<Var, ParseChcError> {
        self.scope
            .get(name)
            .copied()
            .ok_or_else(|| ParseChcError::new(format!("unbound variable `{name}`")))
    }

    fn term(&mut self, s: &Sexp) -> Result<LinExpr, ParseChcError> {
        match s {
            Sexp::Sym(t) => {
                if let Ok(n) = t.parse::<BigInt>() {
                    Ok(LinExpr::constant(n))
                } else {
                    Ok(LinExpr::var(self.lookup(t)?))
                }
            }
            Sexp::List(items) => {
                let (op, rest) = split_op(items)?;
                match op {
                    "+" => {
                        let mut acc = LinExpr::zero();
                        for r in rest {
                            acc = &acc + &self.term(r)?;
                        }
                        Ok(acc)
                    }
                    "-" => match rest.len() {
                        0 => Err(ParseChcError::new("(-) needs arguments")),
                        1 => Ok(-&self.term(&rest[0])?),
                        _ => {
                            let mut acc = self.term(&rest[0])?;
                            for r in &rest[1..] {
                                acc = &acc - &self.term(r)?;
                            }
                            Ok(acc)
                        }
                    },
                    "*" => {
                        let mut konst = BigInt::one();
                        let mut expr: Option<LinExpr> = None;
                        for r in rest {
                            let e = self.term(r)?;
                            if e.is_constant() {
                                konst = &konst * e.constant_term();
                            } else if expr.is_none() {
                                expr = Some(e);
                            } else {
                                return Err(ParseChcError::new(
                                    "nonlinear multiplication is not supported",
                                ));
                            }
                        }
                        Ok(match expr {
                            Some(e) => e.scale(&konst),
                            None => LinExpr::constant(konst),
                        })
                    }
                    "mod" | "div" => {
                        if rest.len() != 2 {
                            return Err(ParseChcError::new(format!("({op}) needs 2 arguments")));
                        }
                        let t = self.term(&rest[0])?;
                        let k = self.term(&rest[1])?;
                        if !k.is_constant() || !k.constant_term().is_positive() {
                            return Err(ParseChcError::new(format!(
                                "({op}) divisor must be a positive constant"
                            )));
                        }
                        let k = k.constant_term().clone();
                        let q = self.sys.fresh_var(&format!("{op}!q"));
                        let r = self.sys.fresh_var(&format!("{op}!r"));
                        let qe = LinExpr::var(q);
                        let re = LinExpr::var(r);
                        // t = k*q + r  /\  0 <= r < k
                        self.defs.push(Atom::eq_expr(t, &qe.scale(&k) + &re));
                        self.defs
                            .push(Formula::from(Atom::ge(re.clone(), LinExpr::zero())));
                        self.defs
                            .push(Formula::from(Atom::lt(re.clone(), LinExpr::constant(k))));
                        Ok(if op == "mod" { re } else { qe })
                    }
                    other => Err(ParseChcError::new(format!("unknown term operator `{other}`"))),
                }
            }
        }
    }

    /// Parses a formula that must be predicate-free.
    fn formula(&mut self, s: &Sexp) -> Result<Formula, ParseChcError> {
        let (f, apps) = self.body(s)?;
        if !apps.is_empty() {
            return Err(ParseChcError::new(
                "predicate application not allowed in this position",
            ));
        }
        Ok(f)
    }

    /// Parses a clause body: a constraint plus predicate applications.
    /// Applications may only appear under conjunction.
    fn body(&mut self, s: &Sexp) -> Result<(Formula, Vec<PredApp>), ParseChcError> {
        match s {
            Sexp::Sym(t) => match t.as_str() {
                "true" => Ok((Formula::True, Vec::new())),
                "false" => Ok((Formula::False, Vec::new())),
                name => {
                    if let Some(p) = self.sys.pred_by_name(name) {
                        if p.arity() == 0 {
                            let id = p.id;
                            return Ok((Formula::True, vec![PredApp::new(id, Vec::new())]));
                        }
                    }
                    Err(ParseChcError::new(format!("unknown formula symbol `{name}`")))
                }
            },
            Sexp::List(items) => {
                let (op, rest) = split_op(items)?;
                match op {
                    "and" => {
                        let mut fs = Vec::new();
                        let mut apps = Vec::new();
                        for r in rest {
                            let (f, a) = self.body(r)?;
                            fs.push(f);
                            apps.extend(a);
                        }
                        Ok((Formula::and(fs), apps))
                    }
                    "or" => {
                        let mut fs = Vec::new();
                        for r in rest {
                            fs.push(self.formula(r)?);
                        }
                        Ok((Formula::or(fs), Vec::new()))
                    }
                    "not" => {
                        if rest.len() != 1 {
                            return Err(ParseChcError::new("(not) needs 1 argument"));
                        }
                        Ok((Formula::not(self.formula(&rest[0])?), Vec::new()))
                    }
                    "=>" => {
                        if rest.len() != 2 {
                            return Err(ParseChcError::new("(=>) needs 2 arguments"));
                        }
                        let p = self.formula(&rest[0])?;
                        let c = self.formula(&rest[1])?;
                        Ok((Formula::implies(p, c), Vec::new()))
                    }
                    "<=" | "<" | ">=" | ">" | "=" => {
                        if rest.len() != 2 {
                            return Err(ParseChcError::new(format!("({op}) needs 2 arguments")));
                        }
                        let l = self.term(&rest[0])?;
                        let r = self.term(&rest[1])?;
                        let f = match op {
                            "<=" => Formula::from(Atom::le(l, r)),
                            "<" => Formula::from(Atom::lt(l, r)),
                            ">=" => Formula::from(Atom::ge(l, r)),
                            ">" => Formula::from(Atom::gt(l, r)),
                            "=" => Atom::eq_expr(l, r),
                            _ => unreachable!(),
                        };
                        Ok((f, Vec::new()))
                    }
                    "distinct" => {
                        if rest.len() != 2 {
                            return Err(ParseChcError::new("(distinct) needs 2 arguments"));
                        }
                        let l = self.term(&rest[0])?;
                        let r = self.term(&rest[1])?;
                        let f = Formula::or(vec![
                            Formula::from(Atom::lt(l.clone(), r.clone())),
                            Formula::from(Atom::gt(l, r)),
                        ]);
                        Ok((f, Vec::new()))
                    }
                    name => {
                        // predicate application
                        let p = self
                            .sys
                            .pred_by_name(name)
                            .ok_or_else(|| {
                                ParseChcError::new(format!("unknown predicate `{name}`"))
                            })?
                            .id;
                        let arity = self.sys.pred(p).arity();
                        if rest.len() != arity {
                            return Err(ParseChcError::new(format!(
                                "predicate `{name}` expects {arity} arguments, got {}",
                                rest.len()
                            )));
                        }
                        let mut args = Vec::new();
                        for r in rest {
                            args.push(self.term(r)?);
                        }
                        Ok((Formula::True, vec![PredApp::new(p, args)]))
                    }
                }
            }
        }
    }
}

fn split_op(items: &[Sexp]) -> Result<(&str, &[Sexp]), ParseChcError> {
    match items.split_first() {
        Some((Sexp::Sym(op), rest)) => Ok((op.as_str(), rest)),
        _ => Err(ParseChcError::new("expected an operator at list head")),
    }
}

/// Parses an SMT-LIB2 `HORN` script into a [`ChcSystem`].
///
/// # Errors
///
/// Returns [`ParseChcError`] for malformed s-expressions, unknown
/// operators/predicates, non-linear terms, negated or disjunctive
/// predicate occurrences, and `mod`/`div` in clause heads.
///
/// ```
/// let text = r#"
/// (set-logic HORN)
/// (declare-fun p (Int Int) Bool)
/// (assert (forall ((x Int) (y Int))
///   (=> (and (= x 1) (= y 0)) (p x y))))
/// (assert (forall ((x Int) (y Int))
///   (=> (p x y) (>= x y))))
/// (check-sat)
/// "#;
/// let sys = linarb_logic::parse_chc(text)?;
/// assert_eq!(sys.num_preds(), 1);
/// assert_eq!(sys.num_clauses(), 2);
/// # Ok::<(), linarb_logic::ParseChcError>(())
/// ```
pub fn parse_chc(input: &str) -> Result<ChcSystem, ParseChcError> {
    let sexps = parse_sexps(&tokenize(input)?)?;
    let mut sys = ChcSystem::new();
    let mut global_scope: HashMap<String, Var> = HashMap::new();
    for s in &sexps {
        let items = match s {
            Sexp::List(items) => items,
            Sexp::Sym(t) => {
                return Err(ParseChcError::new(format!("unexpected top-level symbol `{t}`")))
            }
        };
        let (cmd, rest) = split_op(items)?;
        match cmd {
            "set-logic" | "set-info" | "set-option" | "check-sat" | "exit" | "get-model" => {}
            "declare-fun" | "declare-rel" => {
                let name = sym(rest.first(), "declare-fun name")?;
                let args = match rest.get(1) {
                    Some(Sexp::List(a)) => a.len(),
                    _ => return Err(ParseChcError::new("declare-fun needs an argument list")),
                };
                sys.declare_pred(name, args);
            }
            "declare-var" | "declare-const" => {
                let name = sym(rest.first(), "declare-var name")?;
                let v = sys.fresh_var(name);
                global_scope.insert(name.to_string(), v);
            }
            "assert" | "rule" => {
                let inner = rest
                    .first()
                    .ok_or_else(|| ParseChcError::new("assert needs a formula"))?;
                parse_assert(&mut sys, &global_scope, inner)?;
            }
            "query" => {
                // Eldarica-style: (query pred)
                let inner = rest
                    .first()
                    .ok_or_else(|| ParseChcError::new("query needs a formula"))?;
                let mut ctx =
                    ClauseCtx { sys: &mut sys, scope: global_scope.clone(), defs: Vec::new() };
                let (f, apps) = ctx.body(inner)?;
                let mut constraint_parts = vec![f];
                constraint_parts.extend(ctx.defs);
                sys.query(apps, Formula::and(constraint_parts), Formula::False);
            }
            other => return Err(ParseChcError::new(format!("unknown command `{other}`"))),
        }
    }
    Ok(sys)
}

fn sym<'a>(s: Option<&'a Sexp>, what: &str) -> Result<&'a str, ParseChcError> {
    match s {
        Some(Sexp::Sym(t)) => Ok(t),
        _ => Err(ParseChcError::new(format!("expected {what}"))),
    }
}

fn parse_assert(
    sys: &mut ChcSystem,
    global_scope: &HashMap<String, Var>,
    s: &Sexp,
) -> Result<(), ParseChcError> {
    // strip (forall (bindings) body)
    let (scope, inner) = match s {
        Sexp::List(items) if matches!(items.first(), Some(Sexp::Sym(k)) if k == "forall") => {
            let bindings = match items.get(1) {
                Some(Sexp::List(bs)) => bs,
                _ => return Err(ParseChcError::new("forall needs a binding list")),
            };
            let mut scope = global_scope.clone();
            for b in bindings {
                match b {
                    Sexp::List(pair) if pair.len() == 2 => {
                        let name = sym(pair.first(), "binding name")?;
                        let v = sys.fresh_var(name);
                        scope.insert(name.to_string(), v);
                    }
                    _ => return Err(ParseChcError::new("malformed forall binding")),
                }
            }
            let body = items
                .get(2)
                .ok_or_else(|| ParseChcError::new("forall needs a body"))?;
            (scope, body)
        }
        other => (global_scope.clone(), other),
    };

    // inner should be (=> body head), or a bare head (a fact).
    let (body_sexp, head_sexp): (Option<&Sexp>, &Sexp) = match inner {
        Sexp::List(items) if matches!(items.first(), Some(Sexp::Sym(k)) if k == "=>") => {
            if items.len() != 3 {
                return Err(ParseChcError::new("(=>) needs 2 arguments"));
            }
            (Some(&items[1]), &items[2])
        }
        other => (None, other),
    };

    let mut ctx = ClauseCtx { sys, scope, defs: Vec::new() };
    let (constraint, apps) = match body_sexp {
        Some(b) => ctx.body(b)?,
        None => (Formula::True, Vec::new()),
    };

    // Parse head: a predicate application or a known formula.
    enum Head {
        App(PredId, Vec<LinExpr>),
        Goal(Formula),
    }
    let head = match head_sexp {
        Sexp::Sym(t) if t == "false" => Head::Goal(Formula::False),
        Sexp::Sym(t) if t == "true" => Head::Goal(Formula::True),
        Sexp::Sym(t) if ctx.sys.pred_by_name(t).is_some() => {
            let p = ctx.sys.pred_by_name(t).expect("checked").id;
            Head::App(p, Vec::new())
        }
        Sexp::List(items)
            if matches!(items.first(),
                Some(Sexp::Sym(n)) if ctx.sys.pred_by_name(n).is_some()) =>
        {
            let (name, args_s) = split_op(items)?;
            let p = ctx.sys.pred_by_name(name).expect("checked").id;
            let mut args = Vec::new();
            for a in args_s {
                args.push(ctx.term(a)?);
            }
            Head::App(p, args)
        }
        other => {
            let defs_before = ctx.defs.len();
            let g = ctx.formula(other)?;
            if ctx.defs.len() != defs_before {
                return Err(ParseChcError::new(
                    "mod/div are not supported in clause heads; move them into the body",
                ));
            }
            Head::Goal(g)
        }
    };

    let mut constraint_parts = vec![constraint];
    constraint_parts.extend(ctx.defs);
    let constraint = Formula::and(constraint_parts);
    match head {
        Head::App(p, args) => {
            sys.rule(apps, constraint, p, args);
        }
        Head::Goal(g) => {
            sys.query(apps, constraint, g);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chc::{ClauseHead, Interpretation};
    use crate::model::Model;
    use linarb_arith::int;

    const FIG1: &str = r#"
        (set-logic HORN)
        ; Fig. 1 of the paper
        (declare-fun p (Int Int) Bool)
        (assert (forall ((x Int) (y Int))
            (=> (and (= x 1) (= y 0)) (p x y))))
        (assert (forall ((x Int) (y Int) (x1 Int) (y1 Int))
            (=> (and (p x y) (= x1 (+ x y)) (= y1 (+ y 1))) (p x1 y1))))
        (assert (forall ((x Int) (y Int) (x1 Int) (y1 Int))
            (=> (and (p x y) (= x1 (+ x y)) (= y1 (+ y 1))) (>= x1 y1))))
        (assert (forall ((x Int) (y Int))
            (=> (and (= x 1) (= y 0)) (>= x y))))
        (check-sat)
    "#;

    #[test]
    fn parses_fig1() {
        let sys = parse_chc(FIG1).unwrap();
        assert_eq!(sys.num_preds(), 1);
        assert_eq!(sys.num_clauses(), 4);
        assert!(sys.is_recursive());
        assert!(sys.clauses()[0].is_fact());
        assert!(sys.clauses()[3].is_query());
        assert_eq!(sys.clauses()[1].body_preds.len(), 1);
    }

    #[test]
    fn roundtrip_through_printer() {
        let sys = parse_chc(FIG1).unwrap();
        let printed = sys.to_smtlib();
        let back = parse_chc(&printed).unwrap();
        assert_eq!(back.num_preds(), sys.num_preds());
        assert_eq!(back.num_clauses(), sys.num_clauses());
        assert_eq!(back.clauses()[1].body_preds.len(), 1);
    }

    #[test]
    fn parses_arith_ops() {
        let text = r#"
            (declare-fun p (Int) Bool)
            (assert (forall ((x Int) (y Int))
                (=> (and (= x (* 3 y)) (< (- x y 1) 10) (> (+ x (- y)) (- 5)))
                    (p x))))
        "#;
        let sys = parse_chc(text).unwrap();
        assert_eq!(sys.num_clauses(), 1);
    }

    #[test]
    fn mod_lowering_is_semantic() {
        let text = r#"
            (declare-fun p (Int) Bool)
            (assert (forall ((i Int))
                (=> (= (mod i 2) 0) (p i))))
        "#;
        let sys = parse_chc(text).unwrap();
        let c = &sys.clauses()[0];
        // constraint says i = 2q + r, 0 <= r < 2, r = 0
        // find the i variable: the one named "i"
        let mut i_var = None;
        for idx in 0..sys.num_vars() {
            if sys.var_name(Var::from_index(idx as u32)) == "i" {
                i_var = Some(Var::from_index(idx as u32));
            }
        }
        let i = i_var.expect("i must exist");
        // i even: there must exist q,r values making the constraint true.
        // Brute force q over small range.
        let q = (0..sys.num_vars() as u32)
            .map(Var::from_index)
            .find(|v| sys.var_name(*v).starts_with("mod!q"))
            .unwrap();
        let r = (0..sys.num_vars() as u32)
            .map(Var::from_index)
            .find(|v| sys.var_name(*v).starts_with("mod!r"))
            .unwrap();
        let mut m = Model::new();
        m.assign(i, int(4));
        m.assign(q, int(2));
        m.assign(r, int(0));
        assert!(c.constraint.eval(&m));
        m.assign(i, int(5));
        // no q,r with r=0 works for odd i
        let mut found = false;
        for qq in -6i64..6 {
            let mut m2 = Model::new();
            m2.assign(i, int(5));
            m2.assign(q, int(qq));
            m2.assign(r, int(0));
            found |= c.constraint.eval(&m2);
        }
        assert!(!found);
    }

    #[test]
    fn mod_in_head_rejected() {
        let text = r#"
            (declare-fun p (Int) Bool)
            (assert (forall ((i Int))
                (=> (p i) (= (mod i 2) 0))))
        "#;
        assert!(parse_chc(text).is_err());
    }

    #[test]
    fn nonlinear_rejected() {
        let text = r#"
            (declare-fun p (Int) Bool)
            (assert (forall ((x Int) (y Int)) (=> (= x (* y y)) (p x))))
        "#;
        assert!(parse_chc(text).is_err());
    }

    #[test]
    fn unknown_predicate_rejected() {
        let text = r#"
            (assert (forall ((x Int)) (=> (q x) false)))
        "#;
        assert!(parse_chc(text).is_err());
    }

    #[test]
    fn query_head_false() {
        let text = r#"
            (declare-fun p (Int) Bool)
            (assert (forall ((x Int)) (=> (> x 0) (p x))))
            (assert (forall ((x Int)) (=> (and (p x) (< x 0)) false)))
        "#;
        let sys = parse_chc(text).unwrap();
        assert!(sys.clauses()[1].is_query());
        match &sys.clauses()[1].head {
            ClauseHead::Goal(g) => assert_eq!(*g, Formula::False),
            _ => panic!("expected goal head"),
        }
    }

    #[test]
    fn fact_without_forall() {
        let text = r#"
            (declare-fun p (Int Int) Bool)
            (declare-var a Int)
            (assert (=> (= a 3) (p a a)))
        "#;
        let sys = parse_chc(text).unwrap();
        assert_eq!(sys.num_clauses(), 1);
        assert!(sys.clauses()[0].is_fact());
    }

    #[test]
    fn validity_check_on_parsed_system() {
        let sys = parse_chc(FIG1).unwrap();
        let p = sys.pred_by_name("p").unwrap();
        let params = p.params.clone();
        let good: Interpretation = [(
            p.id,
            Formula::and(vec![
                Formula::from(Atom::ge(LinExpr::var(params[0]), LinExpr::constant(int(1)))),
                Formula::from(Atom::ge(LinExpr::var(params[1]), LinExpr::constant(int(0)))),
            ]),
        )]
        .into_iter()
        .collect();
        // Exhaustively check clause 4 (x=1, y=0 -> x>=y) with substituted models.
        let c = &sys.clauses()[3];
        let chk = sys.validity_check(c, &good);
        // Every grid assignment must falsify the check formula.
        let vars: Vec<Var> = chk.vars().into_iter().collect();
        assert!(!vars.is_empty());
        for a in -2i64..3 {
            for b in -2i64..3 {
                let mut m = Model::new();
                if !vars.is_empty() {
                    m.assign(vars[0], int(a));
                }
                if vars.len() > 1 {
                    m.assign(vars[1], int(b));
                }
                assert!(!chk.eval(&m));
            }
        }
    }
}
