//! Linear expressions over integer variables.

use crate::model::Model;
use crate::var::Var;
use linarb_arith::BigInt;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A linear expression `Σ aᵢ·xᵢ + c` with exact integer coefficients.
///
/// The representation is canonical: zero coefficients are never stored,
/// so structural equality is semantic equality.
///
/// ```
/// use linarb_arith::int;
/// use linarb_logic::{LinExpr, Var};
/// let x = Var::from_index(0);
/// let y = Var::from_index(1);
/// let e = LinExpr::var(x).scale(&int(2)) + LinExpr::var(y) + LinExpr::constant(int(-3));
/// assert_eq!(e.coeff(x), int(2));
/// assert_eq!(e.constant_term(), &int(-3));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct LinExpr {
    terms: BTreeMap<Var, BigInt>,
    konst: BigInt,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> LinExpr {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant(c: BigInt) -> LinExpr {
        LinExpr { terms: BTreeMap::new(), konst: c }
    }

    /// The expression `1·v`.
    pub fn var(v: Var) -> LinExpr {
        LinExpr::term(v, BigInt::one())
    }

    /// The expression `coeff·v`.
    pub fn term(v: Var, coeff: BigInt) -> LinExpr {
        let mut terms = BTreeMap::new();
        if !coeff.is_zero() {
            terms.insert(v, coeff);
        }
        LinExpr { terms, konst: BigInt::zero() }
    }

    /// Builds an expression from `(variable, coefficient)` pairs plus a
    /// constant; repeated variables are summed.
    pub fn from_terms<I: IntoIterator<Item = (Var, BigInt)>>(pairs: I, konst: BigInt) -> LinExpr {
        let mut e = LinExpr::constant(konst);
        for (v, c) in pairs {
            e.add_term(v, &c);
        }
        e
    }

    /// Adds `coeff·v` in place.
    pub fn add_term(&mut self, v: Var, coeff: &BigInt) {
        if coeff.is_zero() {
            return;
        }
        let entry = self.terms.entry(v).or_insert_with(BigInt::zero);
        *entry = &*entry + coeff;
        if entry.is_zero() {
            self.terms.remove(&v);
        }
    }

    /// Adds a constant in place.
    pub fn add_constant(&mut self, c: &BigInt) {
        self.konst = &self.konst + c;
    }

    /// The coefficient of `v` (zero if absent).
    pub fn coeff(&self, v: Var) -> BigInt {
        self.terms.get(&v).cloned().unwrap_or_else(BigInt::zero)
    }

    /// The constant term.
    pub fn constant_term(&self) -> &BigInt {
        &self.konst
    }

    /// Iterates over `(variable, coefficient)` pairs in variable order.
    pub fn terms(&self) -> impl Iterator<Item = (Var, &BigInt)> + '_ {
        self.terms.iter().map(|(v, c)| (*v, c))
    }

    /// Number of variables with non-zero coefficient.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` if the expression mentions no variables.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates the variables mentioned.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.terms.keys().copied()
    }

    /// Multiplies every coefficient and the constant by `k`.
    pub fn scale(&self, k: &BigInt) -> LinExpr {
        if k.is_zero() {
            return LinExpr::zero();
        }
        LinExpr {
            terms: self.terms.iter().map(|(v, c)| (*v, c * k)).collect(),
            konst: &self.konst * k,
        }
    }

    /// Evaluates under a model; unassigned variables default to `0`.
    pub fn eval(&self, model: &Model) -> BigInt {
        let mut acc = self.konst.clone();
        for (v, c) in &self.terms {
            acc = &acc + &(c * &model.value(*v));
        }
        acc
    }

    /// Substitutes variables by expressions. Variables without a
    /// mapping are left in place.
    pub fn subst(&self, map: &HashMap<Var, LinExpr>) -> LinExpr {
        let mut out = LinExpr::constant(self.konst.clone());
        for (v, c) in &self.terms {
            match map.get(v) {
                Some(e) => out = &out + &e.scale(c),
                None => out.add_term(*v, c),
            }
        }
        out
    }

    /// Renames variables through `map`; unmapped variables are kept.
    pub fn rename(&self, map: &HashMap<Var, Var>) -> LinExpr {
        LinExpr {
            terms: self
                .terms
                .iter()
                .map(|(v, c)| (*map.get(v).unwrap_or(v), c.clone()))
                .fold(BTreeMap::new(), |mut m, (v, c)| {
                    let e = m.entry(v).or_insert_with(BigInt::zero);
                    *e = &*e + &c;
                    if e.is_zero() {
                        m.remove(&v);
                    }
                    m
                }),
            konst: self.konst.clone(),
        }
    }

    /// GCD of the variable coefficients (zero if constant).
    pub fn coeff_gcd(&self) -> BigInt {
        self.terms
            .values()
            .fold(BigInt::zero(), |g, c| BigInt::gcd(&g, c))
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.terms {
            if first {
                if c.is_one() {
                    write!(f, "{v}")?;
                } else if *c == BigInt::minus_one() {
                    write!(f, "-{v}")?;
                } else {
                    write!(f, "{c}*{v}")?;
                }
                first = false;
            } else if c.is_negative() {
                let a = c.abs();
                if a.is_one() {
                    write!(f, " - {v}")?;
                } else {
                    write!(f, " - {a}*{v}")?;
                }
            } else if c.is_one() {
                write!(f, " + {v}")?;
            } else {
                write!(f, " + {c}*{v}")?;
            }
        }
        if first {
            write!(f, "{}", self.konst)?;
        } else if self.konst.is_positive() {
            write!(f, " + {}", self.konst)?;
        } else if self.konst.is_negative() {
            write!(f, " - {}", self.konst.abs())?;
        }
        Ok(())
    }
}

impl fmt::Debug for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl Add for &LinExpr {
    type Output = LinExpr;
    fn add(self, rhs: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        out.konst = &out.konst + &rhs.konst;
        for (v, c) in &rhs.terms {
            out.add_term(*v, c);
        }
        out
    }
}

impl Sub for &LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: &LinExpr) -> LinExpr {
        self + &(-rhs)
    }
}

impl Neg for &LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        self.scale(&BigInt::minus_one())
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        -&self
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(self, rhs: LinExpr) -> LinExpr {
        &self + &rhs
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        &self - &rhs
    }
}

impl Mul<&BigInt> for &LinExpr {
    type Output = LinExpr;
    fn mul(self, k: &BigInt) -> LinExpr {
        self.scale(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linarb_arith::int;

    fn v(i: u32) -> Var {
        Var::from_index(i)
    }

    #[test]
    fn canonical_zero_coeffs() {
        let e = LinExpr::from_terms([(v(0), int(2)), (v(0), int(-2))], int(5));
        assert!(e.is_constant());
        assert_eq!(e, LinExpr::constant(int(5)));
    }

    #[test]
    fn add_sub_scale() {
        let e = LinExpr::from_terms([(v(0), int(1)), (v(1), int(2))], int(3));
        let f = LinExpr::from_terms([(v(0), int(-1)), (v(2), int(1))], int(-3));
        let sum = &e + &f;
        assert_eq!(sum.coeff(v(0)), int(0));
        assert_eq!(sum.coeff(v(1)), int(2));
        assert_eq!(sum.coeff(v(2)), int(1));
        assert_eq!(sum.constant_term(), &int(0));
        assert_eq!((&e - &e), LinExpr::zero());
        assert_eq!(e.scale(&int(0)), LinExpr::zero());
        assert_eq!(e.scale(&int(-2)).coeff(v(1)), int(-4));
    }

    #[test]
    fn eval_default_zero() {
        let e = LinExpr::from_terms([(v(0), int(2)), (v(1), int(-1))], int(7));
        let mut m = Model::new();
        m.assign(v(0), int(3));
        assert_eq!(e.eval(&m), int(13)); // 2*3 - 0 + 7
        m.assign(v(1), int(5));
        assert_eq!(e.eval(&m), int(8));
    }

    #[test]
    fn subst_composes() {
        // e = x + 2y, substitute x := y - 1 gives 3y - 1
        let e = LinExpr::from_terms([(v(0), int(1)), (v(1), int(2))], int(0));
        let mut map = HashMap::new();
        map.insert(v(0), LinExpr::from_terms([(v(1), int(1))], int(-1)));
        let s = e.subst(&map);
        assert_eq!(s.coeff(v(1)), int(3));
        assert_eq!(s.constant_term(), &int(-1));
    }

    #[test]
    fn rename_merges() {
        // x + y with both renamed to z merges coefficients
        let e = LinExpr::from_terms([(v(0), int(1)), (v(1), int(1))], int(0));
        let map: HashMap<Var, Var> = [(v(0), v(9)), (v(1), v(9))].into_iter().collect();
        let r = e.rename(&map);
        assert_eq!(r.coeff(v(9)), int(2));
        assert_eq!(r.num_terms(), 1);
    }

    #[test]
    fn display_pretty() {
        let e = LinExpr::from_terms([(v(0), int(1)), (v(1), int(-3))], int(2));
        assert_eq!(e.to_string(), "v0 - 3*v1 + 2");
        assert_eq!(LinExpr::zero().to_string(), "0");
        assert_eq!(LinExpr::constant(int(-4)).to_string(), "-4");
    }

    #[test]
    fn coeff_gcd() {
        let e = LinExpr::from_terms([(v(0), int(4)), (v(1), int(-6))], int(3));
        assert_eq!(e.coeff_gcd(), int(2));
        assert_eq!(LinExpr::constant(int(3)).coeff_gcd(), int(0));
    }
}
