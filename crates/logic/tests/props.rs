//! Property tests for the logic IR: structural transformations
//! (NNF, simplify, DNF, substitution) preserve semantics on random
//! formulas over a brute-force evaluation grid.

use linarb_arith::int;
use linarb_logic::{Atom, Formula, LinExpr, Model, Var};
use linarb_testutil::{cases, XorShiftRng};
use std::collections::HashMap;

const NVARS: u32 = 3;
const GRID: i64 = 3;
const CASES: u64 = 96;

fn rand_atom(rng: &mut XorShiftRng) -> Formula {
    let e = LinExpr::from_terms(
        (0..NVARS).map(|i| (Var::from_index(i), int(rng.gen_range(-3i64..=3)))),
        int(0),
    );
    let c = rng.gen_range(-5i64..=5);
    Formula::from(Atom::le(e, LinExpr::constant(int(c))))
}

/// Random formula with nesting depth up to `depth`, mirroring the
/// shapes proptest's recursive strategy used to generate.
fn rand_formula(rng: &mut XorShiftRng, depth: u32) -> Formula {
    if depth == 0 || rng.gen_bool(0.3) {
        return rand_atom(rng);
    }
    match rng.gen_range(0u32..3) {
        0 => {
            let n = rng.gen_range(1usize..3);
            Formula::and((0..n).map(|_| rand_formula(rng, depth - 1)).collect())
        }
        1 => {
            let n = rng.gen_range(1usize..3);
            Formula::or((0..n).map(|_| rand_formula(rng, depth - 1)).collect())
        }
        _ => Formula::not(rand_formula(rng, depth - 1)),
    }
}

fn for_all_grid(check: impl Fn(&Model) -> bool) -> bool {
    for x in -GRID..=GRID {
        for y in -GRID..=GRID {
            for z in -GRID..=GRID {
                let m: Model = [(0u32, x), (1, y), (2, z)]
                    .into_iter()
                    .map(|(i, v)| (Var::from_index(i), int(v)))
                    .collect();
                if !check(&m) {
                    return false;
                }
            }
        }
    }
    true
}

#[test]
fn nnf_preserves_semantics() {
    cases(CASES, 0xB001, |rng| {
        let f = rand_formula(rng, 3);
        let g = f.nnf();
        assert!(for_all_grid(|m| f.eval(m) == g.eval(m)), "{f} vs {g}");
    });
}

#[test]
fn simplify_preserves_semantics() {
    cases(CASES, 0xB002, |rng| {
        let f = rand_formula(rng, 3);
        let g = f.simplify();
        assert!(for_all_grid(|m| f.eval(m) == g.eval(m)), "{f} vs {g}");
        assert!(g.size() <= f.size(), "simplify must not grow the formula");
    });
}

#[test]
fn dnf_preserves_semantics() {
    cases(CASES, 0xB003, |rng| {
        let f = rand_formula(rng, 3);
        if let Some(cubes) = f.to_dnf(256) {
            let g = Formula::or(
                cubes
                    .into_iter()
                    .map(|c| Formula::and(c.into_iter().map(Formula::from).collect()))
                    .collect(),
            );
            assert!(for_all_grid(|m| f.eval(m) == g.eval(m)), "{f} vs {g}");
        }
    });
}

#[test]
fn atom_negation_complements() {
    cases(CASES, 0xB004, |rng| {
        let f = rand_formula(rng, 3);
        for a in f.atoms() {
            let n = a.negate();
            assert!(for_all_grid(|m| a.holds(m) != n.holds(m)));
            assert_eq!(n.negate(), a);
        }
    });
}

#[test]
fn constant_substitution_matches_eval() {
    cases(CASES, 0xB005, |rng| {
        let f = rand_formula(rng, 3);
        let x = rng.gen_range(-3i64..=3);
        let y = rng.gen_range(-3i64..=3);
        let z = rng.gen_range(-3i64..=3);
        let map: HashMap<Var, LinExpr> = [(0u32, x), (1, y), (2, z)]
            .into_iter()
            .map(|(i, v)| (Var::from_index(i), LinExpr::constant(int(v))))
            .collect();
        let g = f.subst(&map);
        let m: Model = [(0u32, x), (1, y), (2, z)]
            .into_iter()
            .map(|(i, v)| (Var::from_index(i), int(v)))
            .collect();
        // g is variable-free: its truth under any model equals f at the point
        assert_eq!(g.eval(&Model::new()), f.eval(&m));
    });
}

#[test]
fn rename_then_rename_back() {
    cases(CASES, 0xB006, |rng| {
        let f = rand_formula(rng, 3);
        // bijective rename to fresh vars and back is identity (semantically)
        let fwd: HashMap<Var, Var> = (0..NVARS)
            .map(|i| (Var::from_index(i), Var::from_index(i + 100)))
            .collect();
        let bwd: HashMap<Var, Var> = (0..NVARS)
            .map(|i| (Var::from_index(i + 100), Var::from_index(i)))
            .collect();
        let g = f.rename(&fwd).rename(&bwd);
        assert!(for_all_grid(|m| f.eval(m) == g.eval(m)));
    });
}
