//! Property tests for the logic IR: structural transformations
//! (NNF, simplify, DNF, substitution) preserve semantics on random
//! formulas over a brute-force evaluation grid.

use linarb_arith::int;
use linarb_logic::{Atom, Formula, LinExpr, Model, Var};
use proptest::prelude::*;
use std::collections::HashMap;

const NVARS: u32 = 3;
const GRID: i64 = 3;

fn arb_formula() -> impl Strategy<Value = Formula> {
    let atom = (
        prop::collection::vec(-3i64..=3, NVARS as usize),
        -5i64..=5,
    )
        .prop_map(|(w, c)| {
            let e = LinExpr::from_terms(
                w.into_iter()
                    .enumerate()
                    .map(|(i, a)| (Var::from_index(i as u32), int(a))),
                int(0),
            );
            Formula::from(Atom::le(e, LinExpr::constant(int(c))))
        });
    atom.prop_recursive(3, 20, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(Formula::and),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Formula::or),
            inner.prop_map(Formula::not),
        ]
    })
}

fn for_all_grid(check: impl Fn(&Model) -> bool) -> bool {
    for x in -GRID..=GRID {
        for y in -GRID..=GRID {
            for z in -GRID..=GRID {
                let m: Model = [(0u32, x), (1, y), (2, z)]
                    .into_iter()
                    .map(|(i, v)| (Var::from_index(i), int(v)))
                    .collect();
                if !check(&m) {
                    return false;
                }
            }
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn nnf_preserves_semantics(f in arb_formula()) {
        let g = f.nnf();
        prop_assert!(for_all_grid(|m| f.eval(m) == g.eval(m)), "{f} vs {g}");
    }

    #[test]
    fn simplify_preserves_semantics(f in arb_formula()) {
        let g = f.simplify();
        prop_assert!(for_all_grid(|m| f.eval(m) == g.eval(m)), "{f} vs {g}");
        prop_assert!(g.size() <= f.size(), "simplify must not grow the formula");
    }

    #[test]
    fn dnf_preserves_semantics(f in arb_formula()) {
        if let Some(cubes) = f.to_dnf(256) {
            let g = Formula::or(
                cubes
                    .into_iter()
                    .map(|c| Formula::and(c.into_iter().map(Formula::from).collect()))
                    .collect(),
            );
            prop_assert!(for_all_grid(|m| f.eval(m) == g.eval(m)), "{f} vs {g}");
        }
    }

    #[test]
    fn atom_negation_complements(f in arb_formula()) {
        for a in f.atoms() {
            let n = a.negate();
            prop_assert!(for_all_grid(|m| a.holds(m) != n.holds(m)));
            prop_assert_eq!(n.negate(), a);
        }
    }

    #[test]
    fn constant_substitution_matches_eval(f in arb_formula(), x in -3i64..=3, y in -3i64..=3, z in -3i64..=3) {
        let map: HashMap<Var, LinExpr> = [(0u32, x), (1, y), (2, z)]
            .into_iter()
            .map(|(i, v)| (Var::from_index(i), LinExpr::constant(int(v))))
            .collect();
        let g = f.subst(&map);
        let m: Model = [(0u32, x), (1, y), (2, z)]
            .into_iter()
            .map(|(i, v)| (Var::from_index(i), int(v)))
            .collect();
        // g is variable-free: its truth under any model equals f at the point
        prop_assert_eq!(g.eval(&Model::new()), f.eval(&m));
    }

    #[test]
    fn rename_then_rename_back(f in arb_formula()) {
        // bijective rename to fresh vars and back is identity (semantically)
        let fwd: HashMap<Var, Var> = (0..NVARS)
            .map(|i| (Var::from_index(i), Var::from_index(i + 100)))
            .collect();
        let bwd: HashMap<Var, Var> = (0..NVARS)
            .map(|i| (Var::from_index(i + 100), Var::from_index(i)))
            .collect();
        let g = f.rename(&fwd).rename(&bwd);
        prop_assert!(for_all_grid(|m| f.eval(m) == g.eval(m)));
    }
}
