//! The data-driven CHC solver (the paper's Algorithm 3).
//!
//! [`CegarSolver`] decides satisfiability of a [`ChcSystem`] by a
//! counterexample-guided loop:
//!
//! 1. Start from the weakest interpretation (`true` for every unknown
//!    predicate).
//! 2. While some clause `φ ∧ p₁(T̄₁) ∧ … ∧ pₖ(T̄ₖ) → h` is invalid
//!    under the current interpretation, obtain a countermodel from the
//!    SMT oracle and convert it into **samples** of each predicate.
//! 3. If every body sample is already a known positive, the head
//!    sample is *derivable*: weaken the head (new positive sample,
//!    negatives cleared, interpretation reset to `true`) — or, if the
//!    head is a known goal, report **unsat** with the derivation tree.
//! 4. Otherwise strengthen the body: unknown body samples become
//!    tentative negatives and the affected predicates are re-learned
//!    with the machine-learning toolchain (`linarb-ml`).
//!
//! Positive samples are always justified by a derivation (the paper's
//! implicit unwinding), so unsat verdicts come with a concrete,
//! replayable counterexample.
//!
//! # Examples
//!
//! Solving the paper's Fig. 1 system:
//!
//! ```
//! use linarb_logic::parse_chc;
//! use linarb_smt::Budget;
//! use linarb_solver::{CegarSolver, SolveResult, SolverConfig};
//!
//! let sys = parse_chc(r#"
//!     (declare-fun p (Int Int) Bool)
//!     (assert (forall ((x Int) (y Int))
//!         (=> (and (= x 1) (= y 0)) (p x y))))
//!     (assert (forall ((x Int) (y Int) (x1 Int) (y1 Int))
//!         (=> (and (p x y) (= x1 (+ x y)) (= y1 (+ y 1))) (p x1 y1))))
//!     (assert (forall ((x Int) (y Int) (x1 Int) (y1 Int))
//!         (=> (and (p x y) (= x1 (+ x y)) (= y1 (+ y 1))) (>= x1 y1))))
//!     (assert (forall ((x Int) (y Int))
//!         (=> (and (= x 1) (= y 0)) (>= x y))))
//! "#).unwrap();
//! let mut solver = CegarSolver::new(&sys, SolverConfig::default());
//! match solver.solve(&Budget::unlimited()) {
//!     SolveResult::Sat(interp) => assert!(interp.contains_key(&sys.pred_by_name("p").unwrap().id)),
//!     other => panic!("Fig. 1 must verify, got {other:?}"),
//! }
//! ```

use linarb_arith::BigInt;
use linarb_logic::{
    Atom, ChcSystem, Clause, ClauseHead, ClauseId, Formula, Interpretation, LinExpr, Model,
    PredApp, PredId, Var,
};
use linarb_ml::{learn, learn_seeded, Dataset, LearnConfig, LearnError, Sample, SeedPlane, SeedStore};
use linarb_pool::Pool;
use linarb_smt::{check_sat, Budget, IncrementalSolver, Lit, SmtResult};
use linarb_trace::{event, CollectingSink, Event, Level, LocalSinkGuard, MetricsReport};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

pub mod progress;
pub use progress::{ProgressReporter, ProgressSnapshot};

/// A pluggable learning engine for the CEGAR loop.
///
/// The default engine is the paper's toolchain (Algorithm 1 + 2 from
/// `linarb-ml`); the evaluation's baseline learners (PIE-style
/// enumeration, DIG-style templates) implement this trait to be
/// compared inside the *same* sampling loop, exactly as in Fig. 8(a)
/// and 8(b).
pub trait Learner: Send + Sync {
    /// Produces a formula over `params` separating the dataset's
    /// positive samples from its negative samples.
    ///
    /// # Errors
    ///
    /// [`LearnError`] when no separator exists (contradictory data) or
    /// the engine's hypothesis space is exhausted.
    fn learn(&self, data: &Dataset, params: &[Var]) -> Result<Formula, LearnError>;

    /// [`learn`](Learner::learn) with symbolic seed planes offered as
    /// first-try separators. Returns the formula plus the indices of
    /// seeds used directly (for hit accounting). Engines that cannot
    /// exploit seeds simply ignore them — the default delegates to
    /// [`learn`](Learner::learn).
    ///
    /// # Errors
    ///
    /// As for [`learn`](Learner::learn).
    fn learn_seeded(
        &self,
        data: &Dataset,
        params: &[Var],
        seeds: &[SeedPlane],
    ) -> Result<(Formula, Vec<usize>), LearnError> {
        let _ = seeds;
        self.learn(data, params).map(|f| (f, Vec::new()))
    }

    /// A short engine name for reports.
    fn name(&self) -> &str;
}

/// A cross-engine seeding bus for portfolio runs.
///
/// When several engines race on one system, the losers can still help
/// the winner: PDR publishes its inductive lemma atoms, interpolation
/// its Farkas planes, and BMC the states of candidate counterexample
/// prefixes. The CEGAR solver drains the bus at every round boundary —
/// atoms flow into its [`SeedStore`] (bumping seed versions, so the
/// learn memo invalidates naturally) and negatives into the sample
/// stores (skipped when already derived positive, since a
/// backward-reachable state that is also forward-derivable means the
/// system is unsat and some engine is about to prove it).
///
/// Implementations live outside this crate (the portfolio driver); the
/// trait is defined here so `linarb-baselines` engines can publish and
/// [`CegarSolver`] can consume without a dependency cycle.
///
/// Attaching a bus makes the refinement trajectory dependent on engine
/// timing, so it is never used on the deterministic single-engine
/// paths.
pub trait CrossSeed: Send + Sync {
    /// Publishes a candidate separating atom for `pred`, expressed
    /// over the predicate's parameters.
    fn publish_atom(&self, pred: PredId, atom: &Atom);
    /// Publishes a state of `pred` that no invariant may contain (it
    /// reaches a goal violation).
    fn publish_negative(&self, pred: PredId, sample: &Sample);
    /// Drains the atoms published since the last call.
    fn take_atoms(&self) -> Vec<(PredId, Atom)>;
    /// Drains the negatives published since the last call.
    fn take_negatives(&self) -> Vec<(PredId, Sample)>;
}

/// The default learner: the paper's machine-learning toolchain.
#[derive(Clone, Debug, Default)]
pub struct MlLearner {
    /// Pipeline configuration (classifier choice, decision tree
    /// on/off, mod features, SVM `C`…).
    pub config: LearnConfig,
}

impl Learner for MlLearner {
    fn learn(&self, data: &Dataset, params: &[Var]) -> Result<Formula, LearnError> {
        learn(data, params, &self.config).map(|(f, _)| f)
    }

    fn learn_seeded(
        &self,
        data: &Dataset,
        params: &[Var],
        seeds: &[SeedPlane],
    ) -> Result<(Formula, Vec<usize>), LearnError> {
        learn_seeded(data, params, &self.config, seeds).map(|(f, s)| (f, s.seed_hits))
    }

    fn name(&self) -> &str {
        if self.config.use_decision_tree {
            "LinearArbitrary+DT"
        } else {
            "LinearArbitrary"
        }
    }
}

/// How the CEGAR loop consults its SMT oracle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OracleMode {
    /// One persistent DPLL(T) context per clause: the clause constraint
    /// and skeleton are encoded once, candidate interpretations are
    /// swapped in and out via activation literals, and learned clauses
    /// carry over between checks. Also enables the countermodel-reuse
    /// fast path.
    #[default]
    Incremental,
    /// Rebuild the encoding and solver state on every check (the
    /// pre-incremental behaviour; kept as the perf baseline and for
    /// differential testing).
    Fresh,
}

/// Configuration of the CEGAR solver.
#[derive(Clone)]
pub struct SolverConfig {
    /// The learning engine.
    pub learner: Arc<dyn Learner>,
    /// Cap on CEGAR refinement steps before giving up.
    pub max_iterations: usize,
    /// SMT oracle strategy.
    pub oracle: OracleMode,
    /// With the incremental oracle, clear the CDCL branching state
    /// (activities, saved phases) before every check. Off by default.
    /// Both settings are sound but walk different countermodel
    /// sequences, and the refinement trajectory follows the models:
    /// empirically, carried-over state keeps every instance the fresh
    /// oracle solves converging (and solves the paper's program (a)
    /// 2× faster), while resetting solves some instances the fresh
    /// oracle cannot (jm2006, hhk2008) at the cost of diverging on
    /// others. See DESIGN.md §8.
    pub oracle_reset: bool,
    /// Worker threads for parallel clause checking. Defaults to the
    /// `LINARB_THREADS` environment variable (when set to an integer
    /// ≥ 1), else 1 — fully sequential. Any thread count produces
    /// bit-identical results: each round's dirty-clause frontier is
    /// pre-checked in parallel against the round-start interpretation
    /// and the outcomes are merged in deterministic frontier order
    /// (see DESIGN.md §10).
    pub threads: usize,
    /// Symbolic seeding (DESIGN.md §12): harvest candidate separating
    /// directions from clause syntax (and any attached hints/atoms),
    /// offer them to the learner as first-try separators and extra
    /// decision-tree features, and prune the ones unsat cores never
    /// use. Defaults to on unless `LINARB_NO_SEED=1`. Purely a
    /// heuristic accelerator: verdicts are unaffected.
    pub seeding: bool,
    /// Extra seed atoms in predicate parameter space, injected by the
    /// caller (e.g. interpolants harvested by the bench harness from
    /// `linarb-baselines`, which the core crate cannot depend on).
    /// Ignored when `seeding` is off.
    pub seed_atoms: Vec<(PredId, Atom)>,
    /// Live progress telemetry: when set, the solver pushes one
    /// [`ProgressSnapshot`] per CEGAR round into the reporter (see
    /// [`progress`]). `None` (the default) costs nothing.
    pub progress: Option<ProgressReporter>,
    /// Cross-engine seeding bus for portfolio runs (see [`CrossSeed`]):
    /// drained at every round boundary. `None` (the default) keeps the
    /// solver fully deterministic.
    pub seed_channel: Option<Arc<dyn CrossSeed>>,
    /// Countermodel-selection heuristic: after every satisfiable
    /// oracle check, greedily shrink the countermodel's coordinates
    /// toward zero (coordinate descent over cheap `eval` calls,
    /// deterministic variable order) while it still witnesses
    /// invalidity. Samples nearer the integer hull of the feasible
    /// region generalize better, which empirically tames the
    /// incremental oracle's wandering trajectories on `program_a`-like
    /// instances. Defaults to `LINARB_MODEL_MIN=1`, else off (the
    /// knob changes solve trajectories, so the default preserves the
    /// established BENCH baselines). `SolveStats::{model_min_improved,
    /// model_min_kept}` record which choice won each check.
    pub minimize_models: bool,
    /// Warm-start state captured from a previous solve of a
    /// structurally similar system (see [`SolveSnapshot`]): negative
    /// samples and seed directions are imported up front, and
    /// persistent clause contexts are adopted for clauses that are
    /// value-identical to their snapshotted counterparts. `None` (the
    /// default) starts cold.
    pub warm_start: Option<Arc<SolveSnapshot>>,
}

/// The `LINARB_THREADS` default for [`SolverConfig::threads`].
fn threads_from_env() -> usize {
    std::env::var("LINARB_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// The `LINARB_NO_SEED` default for [`SolverConfig::seeding`].
fn seeding_from_env() -> bool {
    !std::env::var("LINARB_NO_SEED").is_ok_and(|s| s.trim() == "1")
}

/// The `LINARB_MODEL_MIN` default for [`SolverConfig::minimize_models`].
fn minimize_from_env() -> bool {
    std::env::var("LINARB_MODEL_MIN").is_ok_and(|s| s.trim() == "1")
}

impl SolverConfig {
    /// The paper's configuration with a custom learning pipeline.
    pub fn with_learn_config(learn: LearnConfig) -> SolverConfig {
        SolverConfig {
            learner: Arc::new(MlLearner { config: learn }),
            max_iterations: 20_000,
            oracle: OracleMode::default(),
            oracle_reset: false,
            threads: threads_from_env(),
            seeding: seeding_from_env(),
            seed_atoms: Vec::new(),
            progress: None,
            seed_channel: None,
            minimize_models: minimize_from_env(),
            warm_start: None,
        }
    }

    /// A configuration around any learning engine.
    pub fn with_learner(learner: Arc<dyn Learner>) -> SolverConfig {
        SolverConfig {
            learner,
            max_iterations: 20_000,
            oracle: OracleMode::default(),
            oracle_reset: false,
            threads: threads_from_env(),
            seeding: seeding_from_env(),
            seed_atoms: Vec::new(),
            progress: None,
            seed_channel: None,
            minimize_models: minimize_from_env(),
            warm_start: None,
        }
    }

    /// Selects the SMT oracle strategy.
    pub fn with_oracle(mut self, oracle: OracleMode) -> SolverConfig {
        self.oracle = oracle;
        self
    }

    /// Selects the incremental oracle's decision-reset policy (see
    /// [`SolverConfig::oracle_reset`]).
    pub fn with_oracle_reset(mut self, reset: bool) -> SolverConfig {
        self.oracle_reset = reset;
        self
    }

    /// Sets the worker-thread count (0 is promoted to 1).
    pub fn with_threads(mut self, threads: usize) -> SolverConfig {
        self.threads = threads.max(1);
        self
    }

    /// Enables or disables symbolic seeding (see
    /// [`SolverConfig::seeding`]). Tests use this instead of the
    /// process-global `LINARB_NO_SEED` variable.
    pub fn with_seeding(mut self, seeding: bool) -> SolverConfig {
        self.seeding = seeding;
        self
    }

    /// Injects caller-provided seed atoms (see
    /// [`SolverConfig::seed_atoms`]).
    pub fn with_seed_atoms(mut self, atoms: Vec<(PredId, Atom)>) -> SolverConfig {
        self.seed_atoms = atoms;
        self
    }

    /// Attaches a live progress reporter (see
    /// [`SolverConfig::progress`]).
    pub fn with_progress(mut self, progress: ProgressReporter) -> SolverConfig {
        self.progress = Some(progress);
        self
    }

    /// Attaches a cross-engine seeding bus (see
    /// [`SolverConfig::seed_channel`]).
    pub fn with_seed_channel(mut self, channel: Arc<dyn CrossSeed>) -> SolverConfig {
        self.seed_channel = Some(channel);
        self
    }

    /// Enables or disables the countermodel-minimization heuristic
    /// (see [`SolverConfig::minimize_models`]).
    pub fn with_minimize_models(mut self, minimize: bool) -> SolverConfig {
        self.minimize_models = minimize;
        self
    }

    /// Attaches warm-start state from a previous solve (see
    /// [`SolverConfig::warm_start`]).
    pub fn with_warm_start(mut self, snapshot: Arc<SolveSnapshot>) -> SolverConfig {
        self.warm_start = Some(snapshot);
        self
    }
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig::with_learn_config(LearnConfig::default())
    }
}

impl fmt::Debug for SolverConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SolverConfig {{ learner: {}, max_iterations: {}, oracle: {:?}, oracle_reset: {}, threads: {}, seeding: {}, seed_atoms: {}, progress: {}, seed_channel: {}, minimize_models: {}, warm_start: {} }}",
            self.learner.name(),
            self.max_iterations,
            self.oracle,
            self.oracle_reset,
            self.threads,
            self.seeding,
            self.seed_atoms.len(),
            self.progress.is_some(),
            self.seed_channel.is_some(),
            self.minimize_models,
            self.warm_start.is_some()
        )
    }
}

/// One node of an unsat derivation tree: `pred(sample)` was derived by
/// `clause` from the child derivations (empty for facts).
#[derive(Clone, Debug)]
pub struct DerivationNode {
    /// The derived predicate, or `None` for the goal violation at the
    /// root.
    pub pred: Option<PredId>,
    /// The concrete argument values.
    pub sample: Sample,
    /// The clause whose instance performs this derivation step.
    pub clause: ClauseId,
    /// The clause-variable assignment witnessing the step.
    pub model: Model,
    /// Derivations of the body predicates.
    pub children: Vec<DerivationNode>,
}

impl DerivationNode {
    /// Total number of derivation steps.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(DerivationNode::size).sum::<usize>()
    }

    /// Depth of the tree.
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(DerivationNode::depth).max().unwrap_or(0)
    }

    /// Replays the derivation against the system, checking that every
    /// step's constraint holds under its recorded model and that the
    /// argument terms evaluate to the recorded samples. Used to
    /// validate counterexamples independently of the solver.
    pub fn replay(&self, sys: &ChcSystem) -> bool {
        let clause = sys.clause(self.clause);
        if !clause.constraint.eval(&self.model) {
            return false;
        }
        // head args must evaluate to our sample (goal roots carry the
        // goal-violating model instead of head args).
        if let (Some(_), ClauseHead::Pred(app)) = (&self.pred, &clause.head) {
            if app.eval_args(&self.model) != self.sample {
                return false;
            }
        }
        if let ClauseHead::Goal(g) = &clause.head {
            if self.pred.is_none() && g.eval(&self.model) {
                return false; // goal must be violated at the root
            }
        }
        if clause.body_preds.len() != self.children.len() {
            return false;
        }
        for (app, child) in clause.body_preds.iter().zip(self.children.iter()) {
            if Some(app.pred) != child.pred {
                return false;
            }
            if app.eval_args(&self.model) != child.sample {
                return false;
            }
            if !child.replay(sys) {
                return false;
            }
        }
        true
    }
}

/// Why the solver answered [`SolveResult::Unknown`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UnknownReason {
    /// The wall-clock budget was exhausted.
    Timeout,
    /// The iteration cap was reached.
    IterationLimit,
    /// The SMT oracle answered unknown on a check.
    SmtUnknown,
    /// Learning failed (contradictory samples indicate an internal
    /// invariant violation; reported rather than panicking).
    LearnFailure(String),
}

/// Result of [`CegarSolver::solve`].
#[derive(Debug)]
pub enum SolveResult {
    /// The system is satisfiable; the interpretation validates every
    /// clause.
    Sat(Interpretation),
    /// The system is unsatisfiable; the derivation tree is a concrete
    /// counterexample.
    Unsat(DerivationNode),
    /// No verdict within budget.
    Unknown(UnknownReason),
}

impl SolveResult {
    /// Returns `true` for [`SolveResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }

    /// Returns `true` for [`SolveResult::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, SolveResult::Unsat(_))
    }
}

/// Statistics of a solve run (feeds the paper's `#S` and `#A`
/// columns).
#[derive(Clone, Debug, Default)]
pub struct SolveStats {
    /// CEGAR refinement steps performed.
    pub iterations: usize,
    /// SMT validity checks issued (including ones answered without
    /// running the oracle; subtract `smt_checks_skipped` for the
    /// number of full oracle runs).
    pub smt_checks: usize,
    /// Checks answered without running the oracle: a cached
    /// countermodel still witnessed invalidity, or the head predicate
    /// was unconstrained (`true`) so the clause was trivially valid.
    pub smt_checks_skipped: usize,
    /// Guarded interpretation instantiations served from a clause
    /// context's cache instead of being re-encoded.
    pub ctx_reuse_hits: usize,
    /// CDCL clauses learned across all persistent clause contexts
    /// (zero in [`OracleMode::Fresh`], whose learning is discarded
    /// after every check).
    pub learned_clauses: usize,
    /// Total samples across predicates (the paper's `#S`).
    pub samples: usize,
    /// Positive samples across predicates.
    pub positive_samples: usize,
    /// Learner invocations.
    pub learn_calls: usize,
    /// Rounds whose dirty-clause frontier was speculatively
    /// pre-checked by the pool. Parallelism diagnostic: 0 at 1 thread
    /// (speculation is skipped without parallelism), so — like
    /// `par_checks`, `par_discarded`, and `steal_count` — it is
    /// excluded from cross-thread-count determinism comparisons. All
    /// other statistics are identical at every thread count.
    pub parallel_batches: usize,
    /// Speculative pre-checks issued to the pool.
    pub par_checks: usize,
    /// Speculative pre-checks discarded at merge time because the
    /// interpretation had moved since their snapshot (their oracle
    /// state was rewound; the work shows up only in wall-clock).
    pub par_discarded: usize,
    /// Tasks stolen across pool workers (varies run to run even at a
    /// fixed thread count).
    pub steal_count: u64,
    /// Simplex pivots performed across all persistent clause contexts'
    /// warm theory tableaux. Oracle-phase diagnostic: depends on which
    /// speculative pre-checks ran, so — like the `par_*` fields — it
    /// is excluded from cross-thread-count determinism comparisons.
    pub simplex_pivots: u64,
    /// Theory-level backtracks (assertion-frame pops) across all
    /// persistent clause contexts. Excluded from determinism
    /// comparisons for the same reason as `simplex_pivots`.
    pub theory_backtracks: u64,
    /// Clause-database reductions performed by the persistent CDCL
    /// cores. Excluded from determinism comparisons for the same
    /// reason as `simplex_pivots`.
    pub db_reductions: u64,
    /// Learned clauses still alive in the CDCL databases after
    /// reduction (`learned_clauses` is the lifetime total). Excluded
    /// from determinism comparisons for the same reason as
    /// `simplex_pivots`.
    pub learned_db_size: usize,
    /// Symbolic seed planes harvested into the seed store (0 with
    /// seeding off).
    pub seeded_atoms: usize,
    /// Times the learner used a seed plane directly in place of a
    /// classifier run.
    pub seed_hits: u64,
    /// Seed planes retired by unsat-core pruning.
    pub seeds_pruned: usize,
    /// Learner invocations answered from the memo (dataset and seed
    /// store unchanged since the predicate's last learn).
    pub learn_memo_hits: usize,
    /// Seed atoms accepted from the cross-engine bus (0 without a
    /// [`CrossSeed`] channel; portfolio runs only, so inherently
    /// timing-dependent and excluded from determinism comparisons).
    pub cross_seed_atoms: usize,
    /// Negative samples accepted from the cross-engine bus (0 without
    /// a channel; excluded from determinism comparisons likewise).
    pub cross_seed_negatives: usize,
    /// Satisfiable oracle checks whose countermodel the minimization
    /// heuristic improved (moved at least one coordinate toward
    /// zero). 0 unless [`SolverConfig::minimize_models`] is on.
    pub model_min_improved: u64,
    /// Satisfiable oracle checks where minimization kept the solver's
    /// original countermodel (already coordinate-minimal).
    pub model_min_kept: u64,
    /// Persistent clause contexts adopted from a warm-start snapshot
    /// (0 without [`SolverConfig::warm_start`]).
    pub warm_contexts: usize,
    /// Negative samples imported from a warm-start snapshot.
    pub warm_negatives: usize,
    /// Seed directions imported from a warm-start snapshot.
    pub warm_seed_dirs: usize,
}

impl SolveStats {
    /// Folds these statistics into a [`MetricsReport`] as `core.*`
    /// counters (the serde-free path from solver stats to JSON).
    pub fn export_into(&self, report: &mut MetricsReport) {
        report.set_counter("core.iterations", self.iterations as u64);
        report.set_counter("core.smt_checks", self.smt_checks as u64);
        report.set_counter("core.smt_checks_skipped", self.smt_checks_skipped as u64);
        report.set_counter("core.ctx_reuse_hits", self.ctx_reuse_hits as u64);
        report.set_counter("core.learned_clauses", self.learned_clauses as u64);
        report.set_counter("core.samples", self.samples as u64);
        report.set_counter("core.positive_samples", self.positive_samples as u64);
        report.set_counter("core.learn_calls", self.learn_calls as u64);
        report.set_counter("core.parallel_batches", self.parallel_batches as u64);
        report.set_counter("core.par_checks", self.par_checks as u64);
        report.set_counter("core.par_discarded", self.par_discarded as u64);
        report.set_counter("core.steal_count", self.steal_count);
        report.set_counter("core.simplex_pivots", self.simplex_pivots);
        report.set_counter("core.theory_backtracks", self.theory_backtracks);
        report.set_counter("core.db_reductions", self.db_reductions);
        report.set_counter("core.learned_db_size", self.learned_db_size as u64);
        report.set_counter("core.seeded_atoms", self.seeded_atoms as u64);
        report.set_counter("core.seed_hits", self.seed_hits);
        report.set_counter("core.seeds_pruned", self.seeds_pruned as u64);
        report.set_counter("core.learn_memo_hits", self.learn_memo_hits as u64);
        report.set_counter("core.cross_seed_atoms", self.cross_seed_atoms as u64);
        report.set_counter("core.cross_seed_negatives", self.cross_seed_negatives as u64);
        report.set_counter("core.model_min_improved", self.model_min_improved);
        report.set_counter("core.model_min_kept", self.model_min_kept);
        report.set_counter("core.warm_contexts", self.warm_contexts as u64);
        report.set_counter("core.warm_negatives", self.warm_negatives as u64);
        report.set_counter("core.warm_seed_dirs", self.warm_seed_dirs as u64);
    }

    /// The statistics as a standalone JSON report.
    pub fn to_json(&self) -> String {
        let mut r = MetricsReport::default();
        self.export_into(&mut r);
        r.to_json()
    }
}

/// A persistent DPLL(T) context for one clause.
///
/// The clause constraint (and, for goal clauses, the negated goal) is
/// encoded once as a permanent assertion. Each distinct instantiated
/// interpretation piece — a body predicate's formula over the clause's
/// argument terms, or the negated head instantiation — is pushed once
/// under an activation literal and cached here by structural equality;
/// re-checking the clause under a partially-changed interpretation
/// re-assumes cached guards and encodes only the genuinely new pieces.
#[derive(Clone)]
struct ClauseContext {
    solver: IncrementalSolver,
    guards: HashMap<Formula, Lit>,
    /// Per-guard seed bookkeeping: the predicate whose interpretation
    /// the guarded piece instantiates, and the parameter-space
    /// directions of that interpretation's atoms. Consulted after an
    /// `Unsat` answer to tell core-relevant directions from dead
    /// weight (empty when seeding is off).
    guard_dirs: HashMap<Lit, Vec<(PredId, Vec<BigInt>)>>,
    /// The countermodel from the last invalid check: re-evaluated
    /// before the next check, and if it still witnesses invalidity the
    /// oracle is skipped entirely.
    last_countermodel: Option<Model>,
}

impl ClauseContext {
    fn new(clause: &Clause, reset_decisions: bool) -> ClauseContext {
        let mut solver = IncrementalSolver::new();
        solver.set_decision_reset(reset_decisions);
        solver.assert_permanent(&clause.constraint);
        if let ClauseHead::Goal(g) = &clause.head {
            solver.assert_permanent(&Formula::not(g.clone()));
        }
        ClauseContext {
            solver,
            guards: HashMap::new(),
            guard_dirs: HashMap::new(),
            last_countermodel: None,
        }
    }
}

/// Warm-start state captured from a finished solve — the PR 2
/// persistence (per-clause DPLL(T) contexts with their learned
/// clauses, guard caches and saved branching state) plus the negative
/// sample stores and the harvested seed directions.
/// [`CegarSolver::snapshot`] captures it; [`SolverConfig::with_warm_start`]
/// replays it into a new solve, typically of a *different but
/// structurally similar* system (the serve daemon's near-miss tier).
///
/// Soundness: negatives only bias the learner (every `Sat` verdict is
/// still oracle-verified clause by clause, and `Unsat` derivations
/// are built exclusively from positives derived in-system), seed
/// directions are purely advisory, and a context is adopted only for
/// a clause that is value-identical to its snapshotted origin
/// (constraint, body applications, head — ids aside), so the
/// context's permanent assertions encode exactly the new clause.
#[derive(Clone, Default)]
pub struct SolveSnapshot {
    /// Origin clause (for the adoption equality check) and its
    /// persistent context.
    contexts: Vec<(Clause, ClauseContext)>,
    /// Negative samples per predicate.
    pub negatives: Vec<(PredId, Sample)>,
    /// Seed-store directions per predicate.
    pub seed_dirs: Vec<(PredId, Vec<BigInt>)>,
}

/// Structural clause equality ignoring the id — the warm-start
/// adoption criterion.
fn clause_eq_mod_id(a: &Clause, b: &Clause) -> bool {
    a.constraint == b.constraint && a.body_preds == b.body_preds && a.head == b.head
}

impl SolveSnapshot {
    /// Whether the snapshot carries any state at all.
    pub fn is_empty(&self) -> bool {
        self.contexts.is_empty() && self.negatives.is_empty() && self.seed_dirs.is_empty()
    }

    /// Number of snapshotted clause contexts.
    pub fn num_contexts(&self) -> usize {
        self.contexts.len()
    }

    /// Rewrites every predicate reference through `map` (producer id →
    /// consumer id), dropping entries whose predicate has no image —
    /// the bridge for transplanting a snapshot onto a different,
    /// structurally matched system (canonical indices on both sides
    /// define the map). Clause variables are left untouched: the
    /// adoption equality check in [`CegarSolver::new`] decides clause
    /// by clause whether a context still applies verbatim.
    pub fn remap_preds(&self, map: &HashMap<PredId, PredId>) -> SolveSnapshot {
        let remap_app = |app: &PredApp| -> Option<PredApp> {
            map.get(&app.pred).map(|&p| PredApp::new(p, app.args.clone()))
        };
        let mut contexts = Vec::new();
        'ctx: for (clause, ctx) in &self.contexts {
            let mut body = Vec::with_capacity(clause.body_preds.len());
            for app in &clause.body_preds {
                match remap_app(app) {
                    Some(a) => body.push(a),
                    None => continue 'ctx,
                }
            }
            let head = match &clause.head {
                ClauseHead::Pred(app) => match remap_app(app) {
                    Some(a) => ClauseHead::Pred(a),
                    None => continue 'ctx,
                },
                ClauseHead::Goal(g) => ClauseHead::Goal(g.clone()),
            };
            let mut ctx = ctx.clone();
            // Guard bookkeeping carries predicate ids for seed-core
            // accounting; remap it too (dropping unmapped entries —
            // only heuristics read it).
            ctx.guard_dirs = ctx
                .guard_dirs
                .iter()
                .map(|(lit, dirs)| {
                    let dirs = dirs
                        .iter()
                        .filter_map(|(p, d)| map.get(p).map(|&np| (np, d.clone())))
                        .collect();
                    (*lit, dirs)
                })
                .collect();
            contexts.push((
                Clause { id: clause.id, body_preds: body, constraint: clause.constraint.clone(), head },
                ctx,
            ));
        }
        SolveSnapshot {
            contexts,
            negatives: self
                .negatives
                .iter()
                .filter_map(|(p, s)| map.get(p).map(|&np| (np, s.clone())))
                .collect(),
            seed_dirs: self
                .seed_dirs
                .iter()
                .filter_map(|(p, d)| map.get(p).map(|&np| (np, d.clone())))
                .collect(),
        }
    }
}

/// Statistics accumulated by one oracle check, kept separate from
/// [`SolveStats`] so checks can run on worker threads and be folded
/// into the solver's totals at merge time (in frontier order).
#[derive(Debug, Default)]
struct CheckDelta {
    smt_checks: usize,
    smt_checks_skipped: usize,
    ctx_reuse_hits: usize,
    /// Unsat-core observations for the seed store, in deterministic
    /// guard order: `(pred, direction, appeared_in_core)` for every
    /// direction behind an active guard of an `Unsat` answer. Applied
    /// at merge time (frontier order), so seed pruning is identical at
    /// every thread count.
    core_notes: Vec<(PredId, Vec<BigInt>, bool)>,
    /// Countermodel-minimization outcomes (see
    /// [`SolverConfig::minimize_models`]).
    model_min_improved: u64,
    model_min_kept: u64,
}

/// Everything a speculative pre-check task sends back to the merge
/// loop. Nothing in here has touched solver state yet: the merge loop
/// either consumes the whole package (result, mutated context,
/// statistics, trace events, metrics) in place of the live check it
/// replaces, or discards everything and restores the backup.
struct Precheck {
    /// The clause's persistent context as the check left it (installed
    /// when the speculation is consumed).
    ctx: Option<ClauseContext>,
    /// The context as it was *before* the check (restored when the
    /// speculation is discarded — the serial path never ran this
    /// check, so its state mutations must not survive).
    backup: Option<ClauseContext>,
    result: SmtResult,
    delta: CheckDelta,
    /// Trace events collected on the worker, replayed if consumed.
    events: Vec<Event>,
    /// Metrics collected on the worker, absorbed if consumed.
    report: Option<MetricsReport>,
    /// Profiler call tree recorded on the worker, grafted into the
    /// merge thread's tree if consumed — at the merge loop's current
    /// span position, i.e. exactly where the serial check would have
    /// grown it, so profiles agree at every thread count.
    profile: Option<linarb_trace::ProfileTree>,
    worker: u64,
}

/// Whether `clause` mentions (in body or head) any predicate in
/// `preds` — i.e. whether its validity could depend on those
/// interpretations.
fn mentions_any(clause: &Clause, preds: &HashSet<PredId>) -> bool {
    if preds.is_empty() {
        return false;
    }
    clause.body_preds.iter().any(|a| preds.contains(&a.pred))
        || matches!(&clause.head, ClauseHead::Pred(a) if preds.contains(&a.pred))
}

/// One SMT validity check of `clause` under `interp`. Everything it
/// touches is passed in — no `&mut CegarSolver` — so it can run on a
/// pool worker; the clause's persistent context (if any) travels
/// through `ctx_slot`.
#[allow(clippy::too_many_arguments)]
fn oracle_check(
    sys: &ChcSystem,
    interp: &Interpretation,
    clause: &Clause,
    mode: OracleMode,
    reset_decisions: bool,
    collect_cores: bool,
    minimize: bool,
    ctx_slot: &mut Option<ClauseContext>,
    budget: &Budget,
    delta: &mut CheckDelta,
) -> SmtResult {
    // The span covers skipped/cached answers too: "core.oracle" in
    // the metrics report is the loop's total oracle-side time.
    let mut span = linarb_trace::span(Level::Debug, "core", "core.oracle");
    delta.smt_checks += 1;
    let result = match mode {
        OracleMode::Fresh => {
            let chk = sys.validity_check(clause, interp);
            match check_sat(&chk, budget) {
                SmtResult::Sat(m) if minimize => {
                    let (m, improved) = minimize_countermodel(&chk, &m);
                    if improved {
                        delta.model_min_improved += 1;
                    } else {
                        delta.model_min_kept += 1;
                    }
                    SmtResult::Sat(m)
                }
                r => r,
            }
        }
        OracleMode::Incremental => oracle_check_incremental(
            sys,
            interp,
            clause,
            reset_decisions,
            collect_cores,
            minimize,
            ctx_slot,
            budget,
            delta,
        ),
    };
    if span.active() {
        span.record("clause", clause.id.0);
        span.record("result", result.label());
    }
    result
}

#[allow(clippy::too_many_arguments)]
fn oracle_check_incremental(
    sys: &ChcSystem,
    interp: &Interpretation,
    clause: &Clause,
    reset_decisions: bool,
    collect_cores: bool,
    minimize: bool,
    ctx_slot: &mut Option<ClauseContext>,
    budget: &Budget,
    delta: &mut CheckDelta,
) -> SmtResult {
    // An unconstrained head (`true`) cannot be violated: the check
    // formula contains the conjunct ¬true.
    if let ClauseHead::Pred(app) = &clause.head {
        if !interp.contains_key(&app.pred) {
            delta.smt_checks_skipped += 1;
            return SmtResult::Unsat;
        }
    }
    let ctx = ctx_slot.get_or_insert_with(|| ClauseContext::new(clause, reset_decisions));
    // Countermodel reuse: if the previous countermodel still
    // violates the clause under the *current* interpretation, it is
    // a valid answer and the oracle run is skipped. Two guards keep
    // the fast path from degrading sample quality: the model must
    // assign every variable of the current check (an under-
    // specified model would be zero-completed by `eval`, yielding
    // degenerate samples), and a cached model is served at most
    // once — `take()` clears it — so refinement never pins on one
    // stale point for many rounds.
    if let Some(m) = ctx.last_countermodel.take() {
        let chk = sys.validity_check(clause, interp);
        if chk.vars().iter().all(|v| m.get(*v).is_some()) && chk.eval(&m) {
            delta.smt_checks_skipped += 1;
            return SmtResult::Sat(m);
        }
    }
    // Assemble the interpretation-dependent pieces and their
    // activation literals, encoding only pieces this context has
    // never seen.
    let mut active: Vec<Lit> = Vec::new();
    let mut add_piece =
        |piece: Formula, dirs: Vec<(PredId, Vec<BigInt>)>, ctx: &mut ClauseContext, hits: &mut usize| {
            if matches!(piece, Formula::True) {
                return;
            }
            match ctx.guards.get(&piece) {
                Some(&g) => {
                    *hits += 1;
                    active.push(g);
                }
                None => {
                    let g = ctx.solver.push_guarded(&piece);
                    ctx.guards.insert(piece, g);
                    if !dirs.is_empty() {
                        ctx.guard_dirs.insert(g, dirs);
                    }
                    active.push(g);
                }
            }
        };
    for app in &clause.body_preds {
        let f = ChcSystem::interp_of(interp, app.pred);
        let params = &sys.pred(app.pred).params;
        let dirs = if collect_cores { param_dirs(f, params, app.pred) } else { Vec::new() };
        let piece = app.instantiate(f, params);
        add_piece(piece, dirs, ctx, &mut delta.ctx_reuse_hits);
    }
    if let ClauseHead::Pred(app) = &clause.head {
        let f = ChcSystem::interp_of(interp, app.pred);
        let params = &sys.pred(app.pred).params;
        let dirs = if collect_cores { param_dirs(f, params, app.pred) } else { Vec::new() };
        let piece = Formula::not(app.instantiate(f, params));
        add_piece(piece, dirs, ctx, &mut delta.ctx_reuse_hits);
    }
    let result = match ctx.solver.check(&active, budget) {
        // Countermodels served from the reuse fast path above were
        // already minimized when first cached, so only freshly found
        // models go through the heuristic (and get counted).
        SmtResult::Sat(m) if minimize => {
            let chk = sys.validity_check(clause, interp);
            let (m, improved) = minimize_countermodel(&chk, &m);
            if improved {
                delta.model_min_improved += 1;
            } else {
                delta.model_min_kept += 1;
            }
            SmtResult::Sat(m)
        }
        r => r,
    };
    if let SmtResult::Sat(m) = &result {
        debug_assert!(
            sys.validity_check(clause, interp).eval(m),
            "incremental oracle must return genuine countermodels"
        );
        ctx.last_countermodel = Some(m.clone());
    }
    if collect_cores && result.is_unsat() {
        // Every direction behind an active guard "reached the oracle"
        // in this refutation; the ones whose guard made the final
        // conflict are core-useful. Guard order (body, then head) keeps
        // the notes deterministic.
        let core = ctx.solver.last_unsat_core();
        for g in &active {
            if let Some(dirs) = ctx.guard_dirs.get(g) {
                let useful = core.contains(g);
                for (pred, dir) in dirs {
                    delta.core_notes.push((*pred, dir.clone(), useful));
                }
            }
        }
    }
    result
}

/// The parameter-space directions of a predicate interpretation's
/// atoms, tagged with the predicate — the currency of unsat-core seed
/// accounting. Atoms mentioning non-parameter variables (none in
/// practice) are skipped.
fn param_dirs(f: &Formula, params: &[Var], pred: PredId) -> Vec<(PredId, Vec<BigInt>)> {
    f.atoms()
        .iter()
        .filter_map(|a| {
            let expr = a.expr();
            if expr.vars().any(|v| !params.contains(&v)) {
                return None;
            }
            let dir: Vec<BigInt> = params.iter().map(|v| expr.coeff(*v)).collect();
            dir.iter().any(|c| !c.is_zero()).then_some((pred, dir))
        })
        .collect()
}

/// The countermodel-selection heuristic behind
/// [`SolverConfig::minimize_models`]: greedy coordinate descent
/// toward zero over cheap `eval` calls. For each variable (in index
/// order) try zero, the half-way point, and one step toward zero,
/// keeping the first candidate under which `chk` still evaluates to
/// true — i.e. the model still witnesses the clause violation. Passes
/// repeat while any coordinate moves (bounded), so the result is
/// componentwise minimal up to the candidate grid. Deterministic,
/// oracle-free, and sound: the returned model satisfies `chk`
/// whenever the input did.
fn minimize_countermodel(chk: &Formula, m: &Model) -> (Model, bool) {
    let mut vars: Vec<Var> = chk.vars().into_iter().collect();
    vars.sort();
    let mut cur = m.clone();
    let mut changed = false;
    let two = BigInt::from(2);
    for _ in 0..4 {
        let mut improved = false;
        for &v in &vars {
            let val = cur.value(v);
            if val.is_zero() {
                continue;
            }
            let half = val.div_rem(&two).0;
            let step = if val.is_negative() {
                &val + &BigInt::one()
            } else {
                &val - &BigInt::one()
            };
            for cand in [BigInt::zero(), half, step] {
                if cand == val {
                    continue;
                }
                let prev = cur.assign(v, cand);
                if chk.eval(&cur) {
                    improved = true;
                    changed = true;
                    break;
                }
                cur.assign(v, prev.unwrap_or_else(|| val.clone()));
            }
        }
        if !improved {
            break;
        }
    }
    (cur, changed)
}

/// Returns the variable of a single-variable, unit-coefficient,
/// constant-free argument term, or `None` for anything richer.
fn plain_var(e: &LinExpr) -> Option<Var> {
    if !e.constant_term().is_zero() {
        return None;
    }
    let mut terms = e.terms();
    match (terms.next(), terms.next()) {
        (Some((v, c)), None) if c.is_one() => Some(v),
        _ => None,
    }
}

/// Harvests seed directions from the clauses themselves: for every
/// predicate application whose arguments include plain variables, each
/// atom of the clause constraint (and of the goal, for queries) over
/// those variables is a candidate separating direction in the
/// predicate's parameter space. Loop guards, initialization equalities
/// and safety properties all surface here.
fn harvest_clause_seeds(sys: &ChcSystem, seeds: &mut SeedStore) {
    for clause in sys.clauses() {
        let mut atoms: Vec<Atom> = clause.constraint.atoms();
        if let ClauseHead::Goal(g) = &clause.head {
            atoms.extend(g.atoms());
        }
        if atoms.is_empty() {
            continue;
        }
        let head_app = match &clause.head {
            ClauseHead::Pred(app) => Some(app),
            ClauseHead::Goal(_) => None,
        };
        for app in clause.body_preds.iter().chain(head_app) {
            // Map clause variables to the argument positions they
            // occupy (first occurrence wins).
            let mut pos: HashMap<Var, usize> = HashMap::new();
            for (i, arg) in app.args.iter().enumerate() {
                if let Some(v) = plain_var(arg) {
                    pos.entry(v).or_insert(i);
                }
            }
            if pos.is_empty() {
                continue;
            }
            for a in &atoms {
                let expr = a.expr();
                if expr.vars().any(|v| !pos.contains_key(&v)) {
                    continue;
                }
                let mut dir = vec![BigInt::zero(); app.args.len()];
                for (v, &i) in &pos {
                    dir[i] = expr.coeff(*v);
                }
                seeds.add_dir(app.pred, dir);
            }
        }
    }
}

/// The data-driven CHC solver.
pub struct CegarSolver<'a> {
    sys: &'a ChcSystem,
    config: SolverConfig,
    interp: Interpretation,
    data: HashMap<PredId, Dataset>,
    /// Justification of each positive sample: the deriving clause, the
    /// body samples it consumed, and the witnessing model.
    justif: HashMap<(PredId, Sample), (ClauseId, Vec<(PredId, Sample)>, Model)>,
    /// Persistent per-clause oracle contexts ([`OracleMode::Incremental`]).
    /// During a batch pre-check each frontier clause's context moves
    /// into its worker task and back; between rounds they all live
    /// here.
    contexts: HashMap<ClauseId, ClauseContext>,
    pool: Pool,
    stats: SolveStats,
    /// Symbolic seed planes per predicate (empty when seeding is off).
    seeds: SeedStore,
    /// Per-predicate learn memo: the key identifying the inputs of the
    /// last learner run — `(num_positive, neg_epoch, num_negative,
    /// seed version)`; both sample classes are append-only within a
    /// negative epoch, so matching keys mean identical datasets — and
    /// its result. One entry per predicate suffices: keys never
    /// revisit an earlier state.
    learn_memo: HashMap<PredId, ((usize, u64, usize, u64), Formula)>,
    /// Cumulative oracle-phase micros this solve (pre-check batches +
    /// live checks), reported through [`ProgressReporter`]. Wall-clock
    /// — never feeds back into the trajectory.
    phase_oracle_us: u64,
    /// Cumulative resolve-phase micros this solve (sample extraction,
    /// learning, interpretation updates).
    phase_resolve_us: u64,
    /// CEGAR rounds completed (frontier drains).
    round: u64,
}

impl<'a> CegarSolver<'a> {
    /// Creates a solver for the given system.
    pub fn new(sys: &'a ChcSystem, config: SolverConfig) -> CegarSolver<'a> {
        let mut data: HashMap<PredId, Dataset> = sys
            .preds()
            .iter()
            .map(|p| (p.id, Dataset::new(p.arity())))
            .collect();
        let pool = Pool::new(config.threads.max(1));
        let mut stats = SolveStats::default();
        let warm = config.warm_start.clone();
        let mut seeds = SeedStore::new();
        if config.seeding {
            harvest_clause_seeds(sys, &mut seeds);
            for (p, dir) in sys.seed_hints() {
                if dir.len() == sys.pred(*p).params.len() {
                    seeds.add_dir(*p, dir.clone());
                }
            }
            for (p, atom) in &config.seed_atoms {
                seeds.add_atom(*p, atom, &sys.pred(*p).params);
            }
            // Warm-start directions join before pairwise closure so
            // imported planes combine with the syntactic harvest.
            if let Some(ws) = &warm {
                let importable: Vec<(PredId, Vec<BigInt>)> = ws
                    .seed_dirs
                    .iter()
                    .filter(|(p, dir)| {
                        (p.0 as usize) < sys.num_preds()
                            && dir.len() == sys.pred(*p).params.len()
                    })
                    .cloned()
                    .collect();
                stats.warm_seed_dirs = seeds.import_dirs(&importable);
            }
            seeds.combine_pairs();
        }
        let mut contexts = HashMap::new();
        if let Some(ws) = &warm {
            for (p, sample) in &ws.negatives {
                if let Some(d) = data.get_mut(p) {
                    if d.dim() == sample.len() && d.add_negative(sample.clone()) {
                        stats.warm_negatives += 1;
                    }
                }
            }
            if config.oracle == OracleMode::Incremental {
                for clause in sys.clauses() {
                    if let Some((_, ctx)) =
                        ws.contexts.iter().find(|(c, _)| clause_eq_mod_id(c, clause))
                    {
                        let mut ctx = ctx.clone();
                        ctx.solver.set_decision_reset(config.oracle_reset);
                        contexts.insert(clause.id, ctx);
                        stats.warm_contexts += 1;
                    }
                }
            }
        }
        CegarSolver {
            sys,
            config,
            interp: Interpretation::new(),
            data,
            justif: HashMap::new(),
            contexts,
            pool,
            stats,
            seeds,
            learn_memo: HashMap::new(),
            phase_oracle_us: 0,
            phase_resolve_us: 0,
            round: 0,
        }
    }

    /// Captures the warm-start state of this solve (see
    /// [`SolveSnapshot`]): every persistent clause context paired with
    /// its origin clause, the negative sample stores, and the seed
    /// directions. Deterministic — entries are ordered by clause /
    /// predicate id. Cheap relative to a solve (clones of already-built
    /// state); call it after [`solve`](Self::solve) returns.
    pub fn snapshot(&self) -> SolveSnapshot {
        let mut contexts: Vec<(Clause, ClauseContext)> = self
            .contexts
            .iter()
            .map(|(cid, ctx)| (self.sys.clause(*cid).clone(), ctx.clone()))
            .collect();
        contexts.sort_by_key(|(c, _)| c.id);
        let mut negatives = Vec::new();
        let mut preds: Vec<PredId> = self.data.keys().copied().collect();
        preds.sort();
        for p in &preds {
            for sample in self.data[p].negatives() {
                negatives.push((*p, sample.clone()));
            }
        }
        let mut seed_dirs = Vec::new();
        for p in self.sys.preds() {
            for plane in self.seeds.planes(p.id) {
                seed_dirs.push((p.id, plane.dir().to_vec()));
            }
        }
        SolveSnapshot { contexts, negatives, seed_dirs }
    }

    /// Statistics of the last [`solve`](Self::solve) run.
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }

    /// The current interpretation (meaningful after a `Sat` result).
    pub fn interpretation(&self) -> &Interpretation {
        &self.interp
    }

    /// Runs Algorithm 3 to completion (or budget exhaustion).
    pub fn solve(&mut self, budget: &Budget) -> SolveResult {
        let mut span = linarb_trace::span(Level::Info, "core", "cegar.solve");
        if span.active() {
            span.record("clauses", self.sys.clauses().len());
            span.record("preds", self.sys.preds().len());
        }
        let result = self.solve_inner(budget);
        if span.active() {
            span.record("result", match &result {
                SolveResult::Sat(_) => "sat",
                SolveResult::Unsat(_) => "unsat",
                SolveResult::Unknown(_) => "unknown",
            });
            span.record("iterations", self.stats.iterations);
            span.record("samples", self.stats.samples);
        }
        result
    }

    fn solve_inner(&mut self, budget: &Budget) -> SolveResult {
        // Dirty-set scheduling: a clause needs (re)checking iff the
        // interpretation of a predicate it mentions changed. Work
        // proceeds in rounds: each round snapshots the dirty queue in
        // FIFO dirtying order — the order the merges enqueued clauses
        // in, which preserves the paper's propagation preference
        // (consumers of a weakened head before the clause that
        // weakened it) — pre-checks every frontier clause against the
        // round-start interpretation (in parallel when the pool and
        // frontier allow it), and then merges the outcomes
        // sequentially in that same order.
        //
        // The merge loop replays the *sequential* algorithm exactly: a
        // pre-check seed is consumed only when none of the clause's
        // predicates changed interpretation since round start — then
        // the seed (result and mutated oracle context alike) is
        // byte-identical to the live check the serial loop would run —
        // and discarded otherwise, restoring the context snapshot the
        // worker took before checking. The refinement trajectory is
        // therefore not merely deterministic per thread count: it is
        // the same trajectory at every thread count, parallelism only
        // changes which checks come precomputed.
        let mut dirty: VecDeque<ClauseId> =
            self.sys.clauses().iter().map(|c| c.id).collect();
        let mut dirty_set: HashSet<ClauseId> = dirty.iter().copied().collect();
        self.round = 0;
        self.phase_oracle_us = 0;
        self.phase_resolve_us = 0;

        while !dirty.is_empty() {
            if budget.exhausted() {
                self.finalize_stats();
                return SolveResult::Unknown(UnknownReason::Timeout);
            }
            // Round boundary: retire seed planes the oracle has
            // repeatedly judged irrelevant (never in an unsat core).
            // Purely counter-based — a trait of the trajectory, not
            // the clock — so pruning happens at the same iteration at
            // every thread count.
            if self.config.seeding {
                self.seeds.prune_dead();
            }
            // Round boundary: absorb whatever the racing engines have
            // published since the last round (portfolio runs only).
            if let Some(chan) = self.config.seed_channel.clone() {
                self.drain_seed_channel(&*chan);
            }
            self.round += 1;
            if self.config.progress.is_some() {
                let snap = self.progress_snapshot(dirty.len(), budget);
                // Re-borrow: snapshot assembly needs `&self`.
                if let Some(p) = &self.config.progress {
                    p.emit(&snap);
                }
            }
            let frontier: Vec<ClauseId> = dirty.drain(..).collect();
            // Note: `dirty_set` keeps the frontier clauses until each
            // one's merge turn, so mid-round dirtying of a clause that
            // is still pending this round stays a no-op — exactly the
            // sequential queue's dedup behaviour.
            let precheck_start = Instant::now();
            let seeds = self.precheck_frontier(&frontier, budget);
            self.phase_oracle_us += precheck_start.elapsed().as_micros() as u64;
            // Predicates whose interpretation changed since the
            // round-start snapshot the pre-checks ran against.
            let mut changed_round: HashSet<PredId> = HashSet::new();
            for (&cid, seed) in frontier.iter().zip(seeds) {
                dirty_set.remove(&cid);
                let clause = self.sys.clause(cid);
                // Decide the speculation's fate up front: a seed is
                // consumable iff no predicate this clause mentions
                // changed since the pre-check's snapshot — then result
                // and context state are byte-identical to the live
                // check below. Otherwise rewind to the snapshot.
                let mut speculation: Option<Precheck> = None;
                if let Some(mut s) = seed {
                    if mentions_any(clause, &changed_round) {
                        self.stats.par_discarded += 1;
                        if let Some(ctx) = s.backup {
                            self.contexts.insert(cid, ctx);
                        }
                    } else {
                        if let Some(ctx) = s.ctx.take() {
                            self.contexts.insert(cid, ctx);
                        }
                        speculation = Some(s);
                    }
                }
                // Inner loop: resolve this clause until valid.
                loop {
                    self.stats.iterations += 1;
                    event!(Level::Debug, "core", "cegar.iteration",
                        "n" => self.stats.iterations, "clause" => clause.id.0);
                    if self.stats.iterations > self.config.max_iterations {
                        self.finalize_stats();
                        return SolveResult::Unknown(UnknownReason::IterationLimit);
                    }
                    if budget.exhausted() {
                        self.finalize_stats();
                        return SolveResult::Unknown(UnknownReason::Timeout);
                    }
                    let result = match speculation.take() {
                        // First check comes precomputed: account for it
                        // exactly as if it ran here — fold in its
                        // statistics, replay its trace events (stamped
                        // with the worker that ran it), absorb its
                        // metrics.
                        Some(p) => {
                            self.apply_delta(&p.delta);
                            for mut e in p.events {
                                e.thread = Some(p.worker);
                                linarb_trace::replay(&e);
                            }
                            if let Some(rep) = &p.report {
                                linarb_trace::metrics::absorb_current(rep);
                            }
                            if let Some(tree) = &p.profile {
                                linarb_trace::profile::absorb_current(tree);
                            }
                            p.result
                        }
                        None => {
                            let t = Instant::now();
                            let r = self.check_clause(clause, budget);
                            self.phase_oracle_us += t.elapsed().as_micros() as u64;
                            r
                        }
                    };
                    let model = match result {
                        SmtResult::Unsat => break, // clause valid
                        SmtResult::Unknown => {
                            self.finalize_stats();
                            return SolveResult::Unknown(UnknownReason::SmtUnknown);
                        }
                        SmtResult::Sat(m) => m,
                    };
                    let resolve_start = Instant::now();
                    let resolution = self.resolve(clause, model);
                    self.phase_resolve_us += resolve_start.elapsed().as_micros() as u64;
                    match resolution {
                        Resolution::HeadWeakened(h) => {
                            // Re-queue clauses mentioning h; prefer the
                            // clauses that consume h in the body (the
                            // paper's propagation order) by pushing this
                            // clause last.
                            changed_round.insert(h);
                            self.mark_dirty(h, &mut dirty, &mut dirty_set);
                            if dirty_set.insert(cid) {
                                dirty.push_back(cid);
                            }
                            break;
                        }
                        Resolution::BodyStrengthened(changed) => {
                            for p in changed {
                                changed_round.insert(p);
                                self.mark_dirty(p, &mut dirty, &mut dirty_set);
                            }
                            // keep refining this same clause (inner loop)
                        }
                        Resolution::Refuted(tree) => return SolveResult::Unsat(tree),
                        Resolution::Failed(reason) => {
                            self.finalize_stats();
                            return SolveResult::Unknown(reason);
                        }
                    }
                }
            }
        }
        // Every clause validated.
        self.finalize_stats();
        SolveResult::Sat(self.interp.clone())
    }

    /// Absorbs cross-engine seeds published on the bus: atoms join the
    /// seed store (when seeding is on — the same `LINARB_NO_SEED` kill
    /// switch governs both seed sources), negatives join the sample
    /// stores unless the state was already derived positive (then the
    /// system is unsat and the contradiction is better surfaced by a
    /// derivation than by poisoning the learner input).
    fn drain_seed_channel(&mut self, chan: &dyn CrossSeed) {
        if self.config.seeding {
            for (p, atom) in chan.take_atoms() {
                if let Some(pred) = self.sys.preds().iter().find(|q| q.id == p) {
                    if self.seeds.add_atom(p, &atom, &pred.params) {
                        self.stats.cross_seed_atoms += 1;
                    }
                }
            }
        }
        for (p, sample) in chan.take_negatives() {
            let Some(ds) = self.data.get_mut(&p) else { continue };
            if sample.len() != ds.dim() || ds.contains_positive(&sample) {
                continue;
            }
            if ds.add_negative(sample) {
                self.stats.cross_seed_negatives += 1;
            }
        }
    }

    /// Assembles the per-round [`ProgressSnapshot`] (round barrier
    /// state + cumulative phase timers). Only called when a reporter
    /// is attached, so the store walks cost nothing by default.
    fn progress_snapshot(&self, frontier: usize, budget: &Budget) -> ProgressSnapshot {
        ProgressSnapshot {
            round: self.round,
            iterations: self.stats.iterations,
            frontier,
            samples: self.data.values().map(Dataset::len).sum(),
            positive_samples: self.data.values().map(Dataset::num_positive).sum(),
            interp_preds: self.interp.len(),
            learned_db_size: self
                .contexts
                .values()
                .map(|c| c.solver.learned_db_size() as u64)
                .sum(),
            seeds_added: self.seeds.total_added(),
            seed_version_sum: self
                .sys
                .preds()
                .iter()
                .map(|p| self.seeds.version(p.id))
                .sum(),
            seeds_pruned: self.seeds.total_pruned(),
            oracle_us: self.phase_oracle_us,
            resolve_us: self.phase_resolve_us,
            time_left_ms: budget.remaining().map(|d| d.as_millis() as u64),
            conflicts_left: budget.effective_conflict_limit(),
        }
    }

    /// Runs this round's oracle pre-checks — one isolated task per
    /// frontier clause, all against the round-start interpretation —
    /// and returns per-clause outcomes in frontier order.
    ///
    /// With ≥ 2 frontier clauses the checks are farmed out to the
    /// pool: each clause's persistent [`ClauseContext`] moves into its
    /// task (keyed by clause id), is snapshotted there, and both
    /// states travel back; statistics, trace events, and metrics are
    /// merged on this thread in frontier (FIFO dirtying) order — so
    /// the observable outcome is identical at every thread count.
    /// Worker-side events are stamped with their worker id before
    /// replay. The pre-checks are **pure speculation**: the merge loop
    /// consumes a seed only when it is provably the check the serial
    /// algorithm would have run (see `solve_inner`), and restores the
    /// pre-check snapshot otherwise. With a 1-thread pool, or a
    /// single-clause frontier, the machinery is skipped entirely
    /// (`None` seeds): speculation costs context snapshots and
    /// possibly-wasted checks, which only parallel execution pays for.
    fn precheck_frontier(
        &mut self,
        frontier: &[ClauseId],
        budget: &Budget,
    ) -> Vec<Option<Precheck>> {
        if self.pool.threads() < 2 || frontier.len() < 2 {
            return frontier.iter().map(|_| None).collect();
        }
        self.stats.parallel_batches += 1;
        self.stats.par_checks += frontier.len();
        let inputs: Vec<(ClauseId, Option<ClauseContext>)> = frontier
            .iter()
            .map(|&cid| (cid, self.contexts.remove(&cid)))
            .collect();
        let sys = self.sys;
        let interp = &self.interp;
        let mode = self.config.oracle;
        let reset = self.config.oracle_reset;
        // Each task mirrors the caller's tracing/metrics setup: a
        // worker-local collecting sink at the caller's effective level
        // and a worker-local metrics scope, both merged below. When
        // neither is on, tasks skip capture entirely.
        let level = linarb_trace::effective_level();
        let metrics_on = linarb_trace::metrics::metrics_enabled();
        let profile_on = linarb_trace::profile::profiling_enabled();
        let seeding = self.config.seeding;
        let minimize = self.config.minimize_models;
        let outcomes = self.pool.parallel_map(inputs, move |(cid, slot)| {
            let clause = sys.clause(cid);
            // Snapshot the context on the worker (clones in parallel)
            // so the merge loop can undo the whole check.
            let backup = slot.clone();
            let mut slot = slot;
            let mut delta = CheckDelta::default();
            let mut events: Vec<Event> = Vec::new();
            let mut report: Option<MetricsReport> = None;
            let mut profile: Option<linarb_trace::ProfileTree> = None;
            let result = {
                let sink = (level != Level::Off).then(CollectingSink::new);
                let _guard = sink
                    .clone()
                    .map(|s| LocalSinkGuard::install(Box::new(s), level));
                let scope = metrics_on.then(linarb_trace::MetricsScope::new);
                let pscope = profile_on.then(linarb_trace::ProfileScope::new);
                let r = oracle_check(
                    sys, interp, clause, mode, reset, seeding, minimize, &mut slot,
                    budget, &mut delta,
                );
                if let Some(s) = &sink {
                    events = s.take();
                }
                if let Some(sc) = &scope {
                    report = Some(sc.take_report());
                }
                if let Some(ps) = &pscope {
                    profile = Some(ps.take_tree());
                }
                r
            };
            Precheck {
                ctx: slot,
                backup,
                result,
                delta,
                events,
                report,
                profile,
                worker: linarb_pool::current_worker() as u64,
            }
        });
        outcomes.into_iter().map(Some).collect()
    }

    /// Folds a worker task's statistics into the solver's. Unsat-core
    /// notes flow through here too, so seed usefulness bookkeeping
    /// only ever sees *consumed* checks, in merge order — discarded
    /// speculation leaves the [`SeedStore`] untouched, keeping the
    /// seed trajectory identical at every thread count.
    fn apply_delta(&mut self, delta: &CheckDelta) {
        self.stats.smt_checks += delta.smt_checks;
        self.stats.smt_checks_skipped += delta.smt_checks_skipped;
        self.stats.ctx_reuse_hits += delta.ctx_reuse_hits;
        self.stats.model_min_improved += delta.model_min_improved;
        self.stats.model_min_kept += delta.model_min_kept;
        for (p, dir, useful) in &delta.core_notes {
            self.seeds.note_core(*p, dir, *useful);
        }
    }

    fn finalize_stats(&mut self) {
        self.stats.samples = self.data.values().map(Dataset::len).sum();
        self.stats.positive_samples =
            self.data.values().map(Dataset::num_positive).sum();
        self.stats.learned_clauses = self
            .contexts
            .values()
            .map(|c| c.solver.learned_clauses() as usize)
            .sum();
        self.stats.simplex_pivots = self
            .contexts
            .values()
            .map(|c| c.solver.num_simplex_pivots())
            .sum();
        self.stats.theory_backtracks = self
            .contexts
            .values()
            .map(|c| c.solver.num_theory_backtracks())
            .sum();
        self.stats.db_reductions = self
            .contexts
            .values()
            .map(|c| c.solver.num_db_reductions())
            .sum();
        self.stats.learned_db_size = self
            .contexts
            .values()
            .map(|c| c.solver.learned_db_size())
            .sum();
        self.stats.steal_count = self.pool.steal_count();
        self.stats.seeded_atoms = self.seeds.total_added();
        self.stats.seed_hits = self.seeds.total_hits();
        self.stats.seeds_pruned = self.seeds.total_pruned();
    }

    /// One SMT validity check of `clause` under the current
    /// interpretation, through the configured oracle (serial path:
    /// used by the merge loop's live checks).
    fn check_clause(&mut self, clause: &Clause, budget: &Budget) -> SmtResult {
        let mut slot = self.contexts.remove(&clause.id);
        let mut delta = CheckDelta::default();
        let result = oracle_check(
            self.sys,
            &self.interp,
            clause,
            self.config.oracle,
            self.config.oracle_reset,
            self.config.seeding,
            self.config.minimize_models,
            &mut slot,
            budget,
            &mut delta,
        );
        if let Some(ctx) = slot {
            self.contexts.insert(clause.id, ctx);
        }
        self.apply_delta(&delta);
        result
    }

    fn mark_dirty(
        &self,
        pred: PredId,
        dirty: &mut VecDeque<ClauseId>,
        dirty_set: &mut HashSet<ClauseId>,
    ) {
        for c in self.sys.clauses() {
            let mentions = c.body_preds.iter().any(|a| a.pred == pred)
                || matches!(&c.head, ClauseHead::Pred(a) if a.pred == pred);
            if mentions && dirty_set.insert(c.id) {
                dirty.push_back(c.id);
            }
        }
    }

    fn resolve(&mut self, clause: &Clause, model: Model) -> Resolution {
        // Convert the countermodel into samples (Z3Eval).
        let body_samples: Vec<(PredId, Sample)> = {
            let _sp = linarb_trace::span(Level::Trace, "core", "core.sample_extraction");
            clause
                .body_preds
                .iter()
                .map(|app| (app.pred, app.eval_args(&model)))
                .collect()
        };
        let all_positive = body_samples
            .iter()
            .all(|(p, s)| self.data[p].contains_positive(s));

        if all_positive {
            match &clause.head {
                ClauseHead::Pred(app) => {
                    // Weaken the head: record the derived positive
                    // sample, clear negatives, reset to `true`.
                    let h = app.pred;
                    let sh = app.eval_args(&model);
                    let ds = self.data.get_mut(&h).expect("declared");
                    ds.add_positive(sh.clone());
                    ds.clear_negatives();
                    self.justif
                        .entry((h, sh))
                        .or_insert((clause.id, body_samples, model));
                    self.interp.remove(&h); // back to `true`
                    event!(Level::Debug, "core", "cegar.head_weakened",
                        "clause" => clause.id.0, "pred" => h.0);
                    Resolution::HeadWeakened(h)
                }
                ClauseHead::Goal(_) => {
                    // A derivable configuration violates the goal: the
                    // system is unsatisfiable.
                    let children: Vec<DerivationNode> = body_samples
                        .iter()
                        .map(|(p, s)| self.build_derivation(*p, s))
                        .collect();
                    self.finalize_stats();
                    event!(Level::Info, "core", "cegar.refuted", "clause" => clause.id.0);
                    Resolution::Refuted(DerivationNode {
                        pred: None,
                        sample: Vec::new(),
                        clause: clause.id,
                        model,
                        children,
                    })
                }
            }
        } else {
            // Strengthen: unknown body samples become negatives.
            let mut changed = Vec::new();
            for (p, s) in &body_samples {
                if !self.data[p].contains_positive(s) {
                    let ds = self.data.get_mut(p).expect("declared");
                    if ds.add_negative(s.clone()) && !changed.contains(p) {
                        changed.push(*p);
                    }
                }
            }
            if changed.is_empty() {
                // All body samples known (possible when a negative was
                // re-derived); re-learn every body predicate to force
                // progress.
                changed = body_samples.iter().map(|(p, _)| *p).collect();
                changed.dedup();
            }
            let mut span = linarb_trace::span(Level::Debug, "core", "core.learner");
            if span.active() {
                span.record("clause", clause.id.0);
                span.record("preds", changed.len());
            }
            for p in &changed {
                let pred = self.sys.pred(*p);
                let ds = &self.data[p];
                // The learner is a pure function of (positives,
                // negative epoch, negatives, seed planes): positives
                // only grow, negatives only grow within an epoch
                // (`clear_negatives` bumps the epoch), and seed
                // mutations bump the per-predicate seed version — so
                // this key uniquely identifies the learner's input and
                // a matching memo entry can be replayed verbatim.
                let key = (
                    ds.num_positive(),
                    ds.neg_epoch(),
                    ds.num_negative(),
                    self.seeds.version(*p),
                );
                if let Some((k, f)) = self.learn_memo.get(p) {
                    if *k == key {
                        self.stats.learn_memo_hits += 1;
                        self.interp.insert(*p, f.clone());
                        continue;
                    }
                }
                self.stats.learn_calls += 1;
                let learned = {
                    let planes: &[SeedPlane] = if self.config.seeding {
                        self.seeds.planes(*p)
                    } else {
                        &[]
                    };
                    self.config.learner.learn_seeded(ds, &pred.params, planes)
                };
                match learned {
                    Ok((f, hits)) => {
                        for i in hits {
                            self.seeds.note_hit(*p, i);
                        }
                        self.learn_memo.insert(*p, (key, f.clone()));
                        self.interp.insert(*p, f);
                    }
                    Err(LearnError::ContradictorySamples(s)) => {
                        return Resolution::Failed(UnknownReason::LearnFailure(format!(
                            "contradictory samples for {}: {s:?}",
                            pred.name
                        )))
                    }
                    Err(e) => {
                        return Resolution::Failed(UnknownReason::LearnFailure(e.to_string()))
                    }
                }
            }
            drop(span);
            event!(Level::Debug, "core", "cegar.body_strengthened",
                "clause" => clause.id.0, "preds" => changed.len());
            Resolution::BodyStrengthened(changed)
        }
    }

    fn build_derivation(&self, pred: PredId, sample: &Sample) -> DerivationNode {
        match self.justif.get(&(pred, sample.clone())) {
            Some((clause, body, model)) => DerivationNode {
                pred: Some(pred),
                sample: sample.clone(),
                clause: *clause,
                model: model.clone(),
                children: body
                    .iter()
                    .map(|(p, s)| self.build_derivation(*p, s))
                    .collect(),
            },
            None => unreachable!("positive samples always carry a justification"),
        }
    }

    /// The paper's `#A` column: for the final interpretation of each
    /// predicate, the number of conjuncts in each disjunct of the
    /// DNF-shaped formula.
    pub fn interpretation_shape(&self) -> HashMap<PredId, Vec<usize>> {
        self.interp
            .iter()
            .map(|(p, f)| (*p, disjunct_sizes(f)))
            .collect()
    }
}

/// Number of atoms in each top-level disjunct of a formula.
pub fn disjunct_sizes(f: &Formula) -> Vec<usize> {
    fn conjuncts(f: &Formula) -> usize {
        match f {
            Formula::And(fs) => fs.iter().map(conjuncts).sum(),
            Formula::True | Formula::False => 0,
            _ => 1,
        }
    }
    match f {
        Formula::Or(fs) => fs.iter().map(conjuncts).collect(),
        other => vec![conjuncts(other)],
    }
}

enum Resolution {
    HeadWeakened(PredId),
    BodyStrengthened(Vec<PredId>),
    Refuted(DerivationNode),
    Failed(UnknownReason),
}

impl fmt::Debug for CegarSolver<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CegarSolver {{ preds: {}, clauses: {}, iterations: {} }}",
            self.sys.num_preds(),
            self.sys.num_clauses(),
            self.stats.iterations
        )
    }
}

/// Verifies that an interpretation validates every clause of a system
/// (an independent soundness check used by tests and benches).
pub fn verify_interpretation(
    sys: &ChcSystem,
    interp: &Interpretation,
    budget: &Budget,
) -> Option<bool> {
    for c in sys.clauses() {
        let chk = sys.validity_check(c, interp);
        match check_sat(&chk, budget) {
            SmtResult::Unsat => {}
            SmtResult::Sat(_) => return Some(false),
            SmtResult::Unknown => return None,
        }
    }
    Some(true)
}

/// Convenience: parse-free entry point used by examples and benches.
pub fn solve_system(sys: &ChcSystem, config: SolverConfig, budget: &Budget) -> SolveResult {
    CegarSolver::new(sys, config).solve(budget)
}

// `BigInt` appears in the public `Sample` type alias.
#[doc(hidden)]
pub type _SampleElem = BigInt;

#[cfg(test)]
mod tests {
    use super::*;
    use linarb_logic::parse_chc;

    fn solve_text(text: &str) -> (SolveResult, SolveStats) {
        let sys = parse_chc(text).expect("parse");
        let mut solver = CegarSolver::new(&sys, SolverConfig::default());
        let r = solver.solve(&Budget::unlimited());
        // Independent soundness check for SAT results.
        if let SolveResult::Sat(interp) = &r {
            assert_eq!(
                verify_interpretation(&sys, interp, &Budget::unlimited()),
                Some(true),
                "returned interpretation must validate every clause"
            );
        }
        if let SolveResult::Unsat(tree) = &r {
            assert!(tree.replay(&sys), "counterexample must replay");
        }
        (r, solver.stats().clone())
    }

    const FIG1: &str = r#"
        (declare-fun p (Int Int) Bool)
        (assert (forall ((x Int) (y Int))
            (=> (and (= x 1) (= y 0)) (p x y))))
        (assert (forall ((x Int) (y Int) (x1 Int) (y1 Int))
            (=> (and (p x y) (= x1 (+ x y)) (= y1 (+ y 1))) (p x1 y1))))
        (assert (forall ((x Int) (y Int) (x1 Int) (y1 Int))
            (=> (and (p x y) (= x1 (+ x y)) (= y1 (+ y 1))) (>= x1 y1))))
        (assert (forall ((x Int) (y Int))
            (=> (and (= x 1) (= y 0)) (>= x y))))
    "#;

    #[test]
    fn fig1_verifies() {
        let (r, stats) = solve_text(FIG1);
        assert!(r.is_sat(), "{r:?}");
        assert!(stats.samples > 0);
    }

    #[test]
    fn fig1_unsafe_variant_refuted() {
        // strengthen the property to x > y, which fails at (1, 1)
        let text = FIG1.replace("(>= x1 y1)", "(> x1 y1)");
        let (r, _) = solve_text(&text);
        assert!(r.is_unsat(), "{r:?}");
        if let SolveResult::Unsat(tree) = r {
            assert!(tree.depth() >= 1);
        }
    }

    #[test]
    fn trivially_safe_no_predicates() {
        let (r, _) = solve_text("(assert (forall ((x Int)) (=> (> x 0) (>= x 1))))");
        assert!(r.is_sat());
    }

    #[test]
    fn trivially_unsafe_no_predicates() {
        let (r, _) = solve_text("(assert (forall ((x Int)) (=> (> x 0) (>= x 2))))");
        assert!(r.is_unsat(), "{r:?}");
    }

    #[test]
    fn simple_counter_loop() {
        // i := 0; while (i < 10) i++; assert i == 10
        let text = r#"
            (declare-fun inv (Int) Bool)
            (assert (forall ((i Int)) (=> (= i 0) (inv i))))
            (assert (forall ((i Int) (i1 Int))
                (=> (and (inv i) (< i 10) (= i1 (+ i 1))) (inv i1))))
            (assert (forall ((i Int))
                (=> (and (inv i) (>= i 10)) (= i 10))))
        "#;
        let (r, _) = solve_text(text);
        assert!(r.is_sat(), "{r:?}");
    }

    #[test]
    fn fibonacci_recursion() {
        // Program (c) of the paper: fibo with y >= x - 1.
        let text = r#"
            (declare-fun p (Int Int) Bool)
            (assert (forall ((x Int) (y Int))
                (=> (and (< x 1) (= y 0)) (p x y))))
            (assert (forall ((x Int) (y Int))
                (=> (and (= x 1) (= y 1)) (p x y))))
            (assert (forall ((x Int) (y Int) (y1 Int) (y2 Int))
                (=> (and (> x 1) (p (- x 1) y1) (p (- x 2) y2) (= y (+ y1 y2)))
                    (p x y))))
            (assert (forall ((x Int) (y Int))
                (=> (p x y) (>= y (- x 1)))))
        "#;
        let (r, stats) = solve_text(text);
        assert!(r.is_sat(), "{r:?}");
        assert!(stats.positive_samples > 0, "recursion must generate derivations");
    }

    #[test]
    fn unsafe_recursion_produces_derivation_tree() {
        // claim fibo(x) >= x, false at x = 1 (fib(1)=1>=1 ok) -> x=2:
        // fib(2) = 1 < 2. Non-linear derivation expected.
        let text = r#"
            (declare-fun p (Int Int) Bool)
            (assert (forall ((x Int) (y Int))
                (=> (and (< x 1) (= y 0)) (p x y))))
            (assert (forall ((x Int) (y Int))
                (=> (and (= x 1) (= y 1)) (p x y))))
            (assert (forall ((x Int) (y Int) (y1 Int) (y2 Int))
                (=> (and (> x 1) (p (- x 1) y1) (p (- x 2) y2) (= y (+ y1 y2)))
                    (p x y))))
            (assert (forall ((x Int) (y Int))
                (=> (and (p x y) (> x 1)) (>= y x))))
        "#;
        let (r, _) = solve_text(text);
        match r {
            SolveResult::Unsat(tree) => {
                assert!(tree.size() >= 2, "needs at least one real derivation step");
            }
            other => panic!("expected unsat, got {other:?}"),
        }
    }

    #[test]
    fn two_predicates_chained() {
        let text = r#"
            (declare-fun a (Int) Bool)
            (declare-fun b (Int) Bool)
            (assert (forall ((x Int)) (=> (= x 0) (a x))))
            (assert (forall ((x Int) (x1 Int))
                (=> (and (a x) (< x 5) (= x1 (+ x 1))) (a x1))))
            (assert (forall ((x Int)) (=> (and (a x) (>= x 5)) (b x))))
            (assert (forall ((x Int) (x1 Int))
                (=> (and (b x) (= x1 (- x 1)) (> x 0)) (b x1))))
            (assert (forall ((x Int)) (=> (b x) (>= x 0))))
        "#;
        let (r, _) = solve_text(text);
        assert!(r.is_sat(), "{r:?}");
    }

    #[test]
    fn disjunctive_invariant_program_a() {
        // Program (a) from the paper: x=0, y=*; while (y != 0) {...}
        // assert x != 0 inside the loop after update.
        // CHC encoding with invariant at loop head.
        let text = r#"
            (declare-fun inv (Int Int) Bool)
            (assert (forall ((x Int) (y Int)) (=> (= x 0) (inv x y))))
            (assert (forall ((x Int) (y Int) (x1 Int) (y1 Int))
                (=> (and (inv x y) (distinct y 0)
                         (or (and (< y 0) (= x1 (- x 1)) (= y1 (+ y 1)))
                             (and (>= y 0) (= x1 (+ x 1)) (= y1 (- y 1)))))
                    (inv x1 y1))))
            (assert (forall ((x Int) (y Int) (x1 Int) (y1 Int))
                (=> (and (inv x y) (distinct y 0)
                         (or (and (< y 0) (= x1 (- x 1)) (= y1 (+ y 1)))
                             (and (>= y 0) (= x1 (+ x 1)) (= y1 (- y 1))))
                         (distinct y1 0))
                    (distinct x1 0))))
        "#;
        let (r, _) = solve_text(text);
        assert!(r.is_sat(), "program (a) needs a disjunctive invariant: {r:?}");
    }

    #[test]
    fn stats_populated() {
        let (_, stats) = solve_text(FIG1);
        assert!(stats.iterations > 0);
        assert!(stats.smt_checks > 0);
    }

    #[test]
    fn interpretation_shape_reports_disjuncts() {
        let sys = parse_chc(FIG1).unwrap();
        let mut solver = CegarSolver::new(&sys, SolverConfig::default());
        let r = solver.solve(&Budget::unlimited());
        assert!(r.is_sat());
        let shape = solver.interpretation_shape();
        for sizes in shape.values() {
            assert!(!sizes.is_empty());
        }
    }

    #[test]
    fn ablation_without_dt_still_solves_simple() {
        let sys = parse_chc(FIG1).unwrap();
        let mut lc = LearnConfig::default();
        lc.use_decision_tree = false;
        let config = SolverConfig::with_learn_config(lc);
        let mut solver = CegarSolver::new(&sys, config);
        let r = solver.solve(&Budget::unlimited());
        // Without DT generalization this may need more iterations but
        // should still solve Fig. 1 (or at worst hit the cap).
        assert!(
            r.is_sat() || matches!(r, SolveResult::Unknown(_)),
            "must not report unsat: {r:?}"
        );
    }

    #[test]
    fn iteration_limit_respected() {
        let sys = parse_chc(FIG1).unwrap();
        let config = SolverConfig { max_iterations: 1, ..SolverConfig::default() };
        let mut solver = CegarSolver::new(&sys, config);
        match solver.solve(&Budget::unlimited()) {
            SolveResult::Unknown(UnknownReason::IterationLimit) => {}
            other => panic!("expected iteration limit, got {other:?}"),
        }
    }

    #[test]
    fn any_thread_count_matches_sequential_exactly() {
        let sys = parse_chc(FIG1).unwrap();
        let run = |threads: usize| {
            let mut s =
                CegarSolver::new(&sys, SolverConfig::default().with_threads(threads));
            let r = s.solve(&Budget::unlimited());
            let SolveResult::Sat(interp) = r else {
                panic!("fig1 must verify at {threads} threads");
            };
            (interp, s.stats().clone())
        };
        let (i1, s1) = run(1);
        assert_eq!(s1.parallel_batches, 0, "1 thread must not speculate");
        for threads in [2, 4, 8] {
            let (ik, sk) = run(threads);
            assert_eq!(i1, ik, "interpretation must be identical at {threads} threads");
            // Everything except the parallelism diagnostics is
            // byte-identical: the merge loop replays the sequential
            // trajectory regardless of thread count.
            assert_eq!(s1.iterations, sk.iterations);
            assert_eq!(s1.smt_checks, sk.smt_checks);
            assert_eq!(s1.smt_checks_skipped, sk.smt_checks_skipped);
            assert_eq!(s1.ctx_reuse_hits, sk.ctx_reuse_hits);
            assert_eq!(s1.samples, sk.samples);
            assert_eq!(s1.positive_samples, sk.positive_samples);
            assert_eq!(s1.learn_calls, sk.learn_calls);
            assert!(sk.parallel_batches > 0, "{threads} threads must speculate on fig1");
            assert!(sk.par_checks >= sk.par_discarded);
            // Oracle-phase diagnostics (simplex_pivots,
            // theory_backtracks, db_reductions, learned_db_size) are
            // deliberately NOT compared: speculative pre-checks run
            // (and are sometimes discarded) only when threads > 1, so
            // their oracle work varies with the thread count even
            // though the solve trajectory does not.
        }
    }

    #[test]
    fn parallel_refutation_matches_sequential() {
        let text = r#"
            (declare-fun p (Int Int) Bool)
            (assert (forall ((x Int) (y Int))
                (=> (and (= x 0) (= y 1)) (p x y))))
            (assert (forall ((x Int) (y Int) (x1 Int) (y1 Int))
                (=> (and (p x y) (= x1 (+ x y)) (= y1 (+ y 1))) (p x1 y1))))
            (assert (forall ((x Int) (y Int))
                (=> (p x y) (>= x y))))
        "#;
        let sys = parse_chc(text).unwrap();
        let run = |threads: usize| {
            let mut s =
                CegarSolver::new(&sys, SolverConfig::default().with_threads(threads));
            match s.solve(&Budget::unlimited()) {
                SolveResult::Unsat(tree) => {
                    assert!(tree.replay(&sys), "derivation must replay");
                    (tree.size(), tree.depth(), s.stats().iterations)
                }
                other => panic!("expected unsat at {threads} threads, got {other:?}"),
            }
        };
        assert_eq!(run(1), run(4), "derivation trees must match across thread counts");
    }

    #[test]
    fn contexts_and_prechecks_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ClauseContext>();
        assert_send::<Precheck>();
    }

    #[test]
    fn threads_env_parsing() {
        // Builder clamps zero; env parsing is covered indirectly (the
        // env var is process-global, so tests don't mutate it).
        let cfg = SolverConfig::default().with_threads(0);
        assert_eq!(cfg.threads, 1);
        let cfg = SolverConfig::default().with_threads(6);
        assert_eq!(cfg.threads, 6);
        assert!(format!("{cfg:?}").contains("threads: 6"));
    }
}

/// Simplifies a satisfying interpretation by dropping redundant
/// pieces: each predicate's formula is pruned (top-level disjuncts,
/// then conjuncts inside them) as long as the whole interpretation
/// still validates every clause.
///
/// Returns the simplified interpretation; the result is guaranteed to
/// validate the system (checked incrementally during pruning).
pub fn simplify_interpretation(
    sys: &ChcSystem,
    interp: &Interpretation,
    budget: &Budget,
) -> Interpretation {
    let mut current = interp.clone();
    let preds: Vec<PredId> = current.keys().copied().collect();
    for p in preds {
        let formula = current[&p].clone();
        // candidate reductions: drop one top-level disjunct, or one
        // conjunct of a disjunct
        let mut best = formula.clone();
        loop {
            let mut improved = false;
            for candidate in reductions(&best) {
                if candidate.size() >= best.size() {
                    continue;
                }
                let mut trial = current.clone();
                trial.insert(p, candidate.clone());
                if verify_interpretation(sys, &trial, budget) == Some(true) {
                    best = candidate;
                    improved = true;
                    break;
                }
            }
            if !improved || budget.exhausted() {
                break;
            }
        }
        current.insert(p, best);
    }
    current
}

/// One-step structural reductions of a formula: remove a disjunct,
/// remove a conjunct, or replace the whole thing with `true`.
fn reductions(f: &Formula) -> Vec<Formula> {
    let mut out = vec![Formula::True];
    match f {
        Formula::Or(fs) => {
            for i in 0..fs.len() {
                let mut rest = fs.clone();
                rest.remove(i);
                out.push(Formula::or(rest));
            }
            // also try reducing inside each disjunct
            for (i, g) in fs.iter().enumerate() {
                for r in reductions(g) {
                    if matches!(r, Formula::True) {
                        continue;
                    }
                    let mut rest = fs.clone();
                    rest[i] = r;
                    out.push(Formula::or(rest));
                }
            }
        }
        Formula::And(fs) => {
            for i in 0..fs.len() {
                let mut rest = fs.clone();
                rest.remove(i);
                out.push(Formula::and(rest));
            }
        }
        _ => {}
    }
    out
}

#[cfg(test)]
mod simplify_tests {
    use super::*;
    use linarb_logic::parse_chc;

    #[test]
    fn simplification_keeps_validity_and_shrinks() {
        let sys = parse_chc(
            r#"
            (declare-fun p (Int) Bool)
            (assert (forall ((x Int)) (=> (= x 0) (p x))))
            (assert (forall ((x Int) (x1 Int))
                (=> (and (p x) (< x 5) (= x1 (+ x 1))) (p x1))))
            (assert (forall ((x Int)) (=> (p x) (<= x 5))))
        "#,
        )
        .unwrap();
        let mut solver = CegarSolver::new(&sys, SolverConfig::default());
        let SolveResult::Sat(interp) = solver.solve(&Budget::unlimited()) else {
            panic!("must verify");
        };
        let simplified = simplify_interpretation(&sys, &interp, &Budget::unlimited());
        assert_eq!(
            verify_interpretation(&sys, &simplified, &Budget::unlimited()),
            Some(true)
        );
        let before: usize = interp.values().map(Formula::size).sum();
        let after: usize = simplified.values().map(Formula::size).sum();
        assert!(after <= before, "simplification must not grow ({before} -> {after})");
    }

    #[test]
    fn trivial_interpretation_becomes_true_if_sufficient() {
        // query valid under `true` already: simplifier collapses to true
        let sys = parse_chc(
            r#"
            (declare-fun p (Int) Bool)
            (assert (forall ((x Int)) (=> (> x 0) (p x))))
            (assert (forall ((x Int)) (=> (p x) (>= x (- 100)))))
        "#,
        )
        .unwrap();
        // build an over-complicated interpretation by hand
        let p = sys.pred_by_name("p").unwrap();
        let param = p.params[0];
        use linarb_arith::int;
        use linarb_logic::{Atom, LinExpr};
        let complicated: Interpretation = [(
            p.id,
            Formula::and(vec![
                Formula::from(Atom::ge(LinExpr::var(param), LinExpr::constant(int(-100)))),
                Formula::from(Atom::le(LinExpr::var(param), LinExpr::constant(int(1_000_000)))),
            ]),
        )]
        .into_iter()
        .collect();
        // note: `complicated` is NOT valid here (p must cover all x>0,
        // and it does: x>0 -> x>=-100 and x <= 1000000? NO — x can be
        // 2000000). Use a valid one:
        let valid: Interpretation = [(
            p.id,
            Formula::and(vec![
                Formula::from(Atom::ge(LinExpr::var(param), LinExpr::constant(int(-100)))),
                Formula::from(Atom::ge(LinExpr::var(param), LinExpr::constant(int(-50)))),
            ]),
        )]
        .into_iter()
        .collect();
        let _ = complicated;
        assert_eq!(verify_interpretation(&sys, &valid, &Budget::unlimited()), Some(true));
        let simplified = simplify_interpretation(&sys, &valid, &Budget::unlimited());
        let f = &simplified[&p.id];
        assert!(f.size() <= 1, "should collapse to a single atom or true, got {f}");
    }
}
