//! Live CEGAR progress telemetry.
//!
//! [`CegarSolver`](crate::CegarSolver) emits one [`ProgressSnapshot`]
//! per CEGAR round (at the round barrier, before the frontier is
//! pre-checked) through whatever [`ProgressReporter`] the caller put
//! in [`SolverConfig::progress`](crate::SolverConfig). This is the
//! introspection surface a portfolio canceller or the future serve
//! daemon polls: is the frontier shrinking, are the sample stores
//! growing, is the conflict budget draining — without parsing traces.
//!
//! Snapshots split into two field groups:
//!
//! * **trajectory fields** (round, frontier, samples, seeds, learned
//!   DB…) — functions of the refinement trajectory, therefore
//!   identical at every thread count under the bit-identical replay
//!   guarantee;
//! * **timing fields** (cumulative per-phase micros, budget remaining)
//!   — wall-clock readings, excluded from determinism comparisons
//!   ([`ProgressSnapshot::TIMING_FIELDS`]).
//!
//! Reporters are cheap `Arc` handles; the solver pays nothing when
//! `SolverConfig::progress` is `None`.

use std::fmt::Write as _;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

/// One per-round reading of the CEGAR loop's live state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// CEGAR round number, 1-based.
    pub round: u64,
    /// Refinement iterations completed before this round.
    pub iterations: usize,
    /// Dirty-clause frontier size entering this round.
    pub frontier: usize,
    /// Total samples across all predicate datasets.
    pub samples: usize,
    /// Positive samples across all predicate datasets.
    pub positive_samples: usize,
    /// Predicates with a non-trivial interpretation.
    pub interp_preds: usize,
    /// Alive learned clauses across all persistent oracle contexts.
    pub learned_db_size: u64,
    /// Seed planes ever added to the seed store.
    pub seeds_added: usize,
    /// Sum of per-predicate seed-store versions (bumps on every
    /// addition/prune — a cheap staleness cursor).
    pub seed_version_sum: u64,
    /// Seed planes retired by unsat-core pruning.
    pub seeds_pruned: usize,
    /// Cumulative oracle-phase micros so far (pre-checks + live
    /// checks). Timing field.
    pub oracle_us: u64,
    /// Cumulative resolve-phase micros so far (sample extraction +
    /// learning + interpretation updates). Timing field.
    pub resolve_us: u64,
    /// Milliseconds left on the wall-clock budget, if one is set.
    /// Timing field.
    pub time_left_ms: Option<u64>,
    /// Conflicts left in the shared conflict pool, if one is set.
    /// Timing field (discarded speculation also drains the pool, so
    /// this varies with thread count).
    pub conflicts_left: Option<u64>,
}

impl ProgressSnapshot {
    /// JSON keys of the wall-clock-dependent fields — everything else
    /// is a pure function of the (thread-count-invariant) refinement
    /// trajectory. Determinism comparisons drop exactly these.
    pub const TIMING_FIELDS: [&'static str; 4] =
        ["oracle_us", "resolve_us", "time_left_ms", "conflicts_left"];

    /// The snapshot as one JSON object (one JSONL record).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        let _ = write!(
            s,
            "{{\"kind\":\"progress\",\"round\":{},\"iterations\":{},\"frontier\":{},\
             \"samples\":{},\"positive_samples\":{},\"interp_preds\":{},\
             \"learned_db_size\":{},\"seeds_added\":{},\"seed_version_sum\":{},\
             \"seeds_pruned\":{},\"oracle_us\":{},\"resolve_us\":{}",
            self.round,
            self.iterations,
            self.frontier,
            self.samples,
            self.positive_samples,
            self.interp_preds,
            self.learned_db_size,
            self.seeds_added,
            self.seed_version_sum,
            self.seeds_pruned,
            self.oracle_us,
            self.resolve_us,
        );
        match self.time_left_ms {
            Some(ms) => {
                let _ = write!(s, ",\"time_left_ms\":{ms}");
            }
            None => s.push_str(",\"time_left_ms\":null"),
        }
        match self.conflicts_left {
            Some(n) => {
                let _ = write!(s, ",\"conflicts_left\":{n}");
            }
            None => s.push_str(",\"conflicts_left\":null"),
        }
        s.push('}');
        s
    }

    /// The snapshot as a one-line human ticker.
    pub fn ticker_line(&self) -> String {
        let mut s = format!(
            "[cegar] round {:>3}  iter {:>5}  frontier {:>3}  samples {} (+{})  \
             learned_db {}  seeds {}/{}  oracle {:.2}s  resolve {:.2}s",
            self.round,
            self.iterations,
            self.frontier,
            self.samples,
            self.positive_samples,
            self.learned_db_size,
            self.seeds_added - self.seeds_pruned,
            self.seeds_added,
            self.oracle_us as f64 / 1e6,
            self.resolve_us as f64 / 1e6,
        );
        if let Some(ms) = self.time_left_ms {
            let _ = write!(s, "  budget {:.1}s", ms as f64 / 1e3);
        }
        if let Some(n) = self.conflicts_left {
            let _ = write!(s, "  conflicts {n}");
        }
        s
    }
}

enum ProgressOut {
    /// Human ticker on stderr.
    Stderr,
    /// One JSON object per snapshot to an arbitrary writer.
    Jsonl(Box<dyn Write + Send>),
    /// In-memory capture of the JSONL records (tests, embedding).
    Collect(Vec<String>),
}

/// A cheap, cloneable handle the CEGAR loop pushes one
/// [`ProgressSnapshot`] per round into. See the module docs.
#[derive(Clone)]
pub struct ProgressReporter {
    out: Arc<Mutex<ProgressOut>>,
}

impl ProgressReporter {
    /// A human-readable one-line-per-round ticker on stderr.
    pub fn stderr() -> ProgressReporter {
        ProgressReporter { out: Arc::new(Mutex::new(ProgressOut::Stderr)) }
    }

    /// JSONL snapshots appended to `path` (created/truncated).
    pub fn jsonl_file(path: &std::path::Path) -> io::Result<ProgressReporter> {
        let f = std::fs::File::create(path)?;
        Ok(ProgressReporter::jsonl_writer(Box::new(io::BufWriter::new(f))))
    }

    /// JSONL snapshots pushed into an arbitrary writer.
    pub fn jsonl_writer(w: Box<dyn Write + Send>) -> ProgressReporter {
        ProgressReporter { out: Arc::new(Mutex::new(ProgressOut::Jsonl(w))) }
    }

    /// An in-memory collector; read the records back with
    /// [`ProgressReporter::take_lines`].
    pub fn collector() -> ProgressReporter {
        ProgressReporter { out: Arc::new(Mutex::new(ProgressOut::Collect(Vec::new()))) }
    }

    /// Records one snapshot (called by the solver at each round
    /// barrier).
    pub fn emit(&self, snap: &ProgressSnapshot) {
        let mut out = self.out.lock().unwrap();
        match &mut *out {
            ProgressOut::Stderr => eprintln!("{}", snap.ticker_line()),
            ProgressOut::Jsonl(w) => {
                let _ = writeln!(w, "{}", snap.to_json());
                let _ = w.flush();
            }
            ProgressOut::Collect(v) => v.push(snap.to_json()),
        }
    }

    /// Drains collected JSONL records ([`ProgressReporter::collector`]
    /// reporters only; empty otherwise).
    pub fn take_lines(&self) -> Vec<String> {
        let mut out = self.out.lock().unwrap();
        match &mut *out {
            ProgressOut::Collect(v) => std::mem::take(v),
            _ => Vec::new(),
        }
    }
}

impl std::fmt::Debug for ProgressReporter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &*self.out.lock().unwrap() {
            ProgressOut::Stderr => "stderr",
            ProgressOut::Jsonl(_) => "jsonl",
            ProgressOut::Collect(_) => "collect",
        };
        write!(f, "ProgressReporter({kind})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> ProgressSnapshot {
        ProgressSnapshot {
            round: 3,
            iterations: 41,
            frontier: 2,
            samples: 120,
            positive_samples: 80,
            interp_preds: 2,
            learned_db_size: 37,
            seeds_added: 12,
            seed_version_sum: 14,
            seeds_pruned: 1,
            oracle_us: 1_500_000,
            resolve_us: 250_000,
            time_left_ms: Some(28_500),
            conflicts_left: None,
        }
    }

    #[test]
    fn json_round_trips_through_in_tree_parser() {
        let snap = sample_snapshot();
        let v = linarb_trace::json::parse(&snap.to_json()).expect("valid JSON");
        assert_eq!(v.get("kind").unwrap().as_str(), Some("progress"));
        assert_eq!(v.get("round").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("samples").unwrap().as_f64(), Some(120.0));
        assert_eq!(v.get("time_left_ms").unwrap().as_f64(), Some(28500.0));
        assert_eq!(v.get("conflicts_left"), Some(&linarb_trace::json::Json::Null));
        // Every timing field is present, so scrubbing by key is total.
        for key in ProgressSnapshot::TIMING_FIELDS {
            assert!(v.get(key).is_some(), "missing timing field {key}");
        }
    }

    #[test]
    fn collector_captures_in_order() {
        let rep = ProgressReporter::collector();
        let mut snap = sample_snapshot();
        rep.emit(&snap);
        snap.round = 4;
        rep.emit(&snap);
        let lines = rep.take_lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"round\":3"));
        assert!(lines[1].contains("\"round\":4"));
        assert!(rep.take_lines().is_empty());
    }

    #[test]
    fn jsonl_writer_emits_valid_lines() {
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let buf = Arc::new(Mutex::new(Vec::new()));
        let rep = ProgressReporter::jsonl_writer(Box::new(SharedBuf(Arc::clone(&buf))));
        rep.emit(&sample_snapshot());
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(linarb_trace::json::validate_jsonl(&text).unwrap(), 1);
    }

    #[test]
    fn ticker_mentions_the_load_bearing_numbers() {
        let line = sample_snapshot().ticker_line();
        assert!(line.contains("round   3"), "{line}");
        assert!(line.contains("samples 120 (+80)"), "{line}");
        assert!(line.contains("budget 28.5s"), "{line}");
    }
}
