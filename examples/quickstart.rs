//! Quickstart: verify the paper's Fig. 1 program and print the
//! learned loop invariant.
//!
//! Run with `cargo run --release --example quickstart`.

use linarb::frontend::compile;
use linarb::smt::Budget;
use linarb::solver::{CegarSolver, SolveResult, SolverConfig};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src = r#"
        void main() {
            int x = 1; int y = 0;
            while (*) { x = x + y; y = y + 1; }
            assert(x >= y);
        }
    "#;
    println!("program:\n{src}");
    let sys = compile(src)?;
    println!(
        "CHC system: {} clauses, {} unknown predicate(s)\n",
        sys.num_clauses(),
        sys.num_preds()
    );
    println!("{}", sys.to_smtlib());

    let mut solver = CegarSolver::new(&sys, SolverConfig::default());
    match solver.solve(&Budget::timeout(Duration::from_secs(30))) {
        SolveResult::Sat(interp) => {
            println!("verdict: SAFE (CHC system satisfiable)\n");
            for (pred, formula) in &interp {
                println!("learned invariant for {}:", sys.pred(*pred).name);
                println!("  {formula}");
            }
            println!(
                "\nstats: {} CEGAR iterations, {} SMT checks, {} samples",
                solver.stats().iterations,
                solver.stats().smt_checks,
                solver.stats().samples
            );
        }
        SolveResult::Unsat(cex) => {
            println!("verdict: UNSAFE — counterexample derivation of {} steps", cex.size());
        }
        SolveResult::Unknown(reason) => {
            println!("verdict: UNKNOWN ({reason:?})");
        }
    }
    Ok(())
}
