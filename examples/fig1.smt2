; The paper's Fig. 1 loop as a CHC system: x = 1, y = 0, then
; repeatedly x += y; y += 1 — prove x >= y is invariant.
; Used by the CI trace smoke test and the trace-determinism test.
(declare-fun p (Int Int) Bool)
(assert (forall ((x Int) (y Int))
    (=> (and (= x 1) (= y 0)) (p x y))))
(assert (forall ((x Int) (y Int) (x1 Int) (y1 Int))
    (=> (and (p x y) (= x1 (+ x y)) (= y1 (+ y 1))) (p x1 y1))))
(assert (forall ((x Int) (y Int) (x1 Int) (y1 Int))
    (=> (and (p x y) (= x1 (+ x y)) (= y1 (+ y 1))) (>= x1 y1))))
(assert (forall ((x Int) (y Int))
    (=> (and (= x 1) (= y 0)) (>= x y))))
