//! Head-to-head: the data-driven solver vs the PDR and interpolation
//! baselines on the paper's running examples — a miniature of the
//! Fig. 8(c)/(d) comparison, including the Fig. 1 system on which the
//! paper reports Spacer diverging.
//!
//! Run with `cargo run --release --example solver_comparison`.

use linarb::baselines::{
    InterpConfig, InterpMode, PdrConfig, PdrSolver, UnwindInterp,
};
use linarb::smt::Budget;
use linarb::solver::{CegarSolver, SolverConfig};
use linarb::suite::{paper_examples, Expected};
use std::time::{Duration, Instant};

fn main() {
    let timeout = Duration::from_secs(3);
    println!(
        "{:<18} {:>9} {:>12} {:>12} {:>12} {:>12}",
        "benchmark", "expected", "LinArb", "Spacer", "GPDR", "Duality"
    );
    for bench in paper_examples() {
        let expected = match bench.expected {
            Expected::Safe => "safe",
            Expected::Unsafe => "unsafe",
        };
        let lin = {
            let start = Instant::now();
            let mut s = CegarSolver::new(&bench.system, SolverConfig::default());
            let r = s.solve(&Budget::timeout(timeout));
            verdict(r.is_sat(), r.is_unsat(), start.elapsed())
        };
        let spacer = pdr(&bench.system, true, timeout);
        let gpdr = pdr(&bench.system, false, timeout);
        let duality = {
            let start = Instant::now();
            let mut s = UnwindInterp::new(
                &bench.system,
                InterpConfig { mode: InterpMode::Duality, ..InterpConfig::default() },
            );
            let r = s.solve(&Budget::timeout(timeout));
            verdict(r.is_sat(), r.is_unsat(), start.elapsed())
        };
        println!(
            "{:<18} {:>9} {:>12} {:>12} {:>12} {:>12}",
            bench.name, expected, lin, spacer, gpdr, duality
        );
    }
}

fn pdr(sys: &linarb::logic::ChcSystem, spacer: bool, timeout: Duration) -> String {
    let start = Instant::now();
    let mut s = PdrSolver::new(sys, PdrConfig { spacer_mode: spacer, ..PdrConfig::default() });
    let r = s.solve(&Budget::timeout(timeout));
    verdict(r.is_sat(), r.is_unsat(), start.elapsed())
}

fn verdict(sat: bool, unsat: bool, t: Duration) -> String {
    if sat {
        format!("sat {:.2}s", t.as_secs_f64())
    } else if unsat {
        format!("unsat {:.2}s", t.as_secs_f64())
    } else {
        "timeout".to_string()
    }
}
