//! Head-to-head: the data-driven solver vs the PDR and interpolation
//! baselines on the paper's running examples — a miniature of the
//! Fig. 8(c)/(d) comparison, including the Fig. 1 system on which the
//! paper reports Spacer diverging — followed by the portfolio racing
//! them all under one shared budget.
//!
//! Every engine runs through the portfolio crate's single-engine
//! runner, so this example shares its dispatch (and certificate
//! checking) with the `--engine` CLI path and the bench harness
//! instead of hand-rolling each solver's construction.
//!
//! Run with `cargo run --release --example solver_comparison`.

use linarb::portfolio::{
    check_certificate, run_engine, solve_portfolio, EngineKind, PortfolioConfig,
};
use linarb::smt::Budget;
use linarb::suite::{paper_examples, Expected};
use std::time::{Duration, Instant};

fn main() {
    let timeout = Duration::from_secs(3);
    let engines = [
        EngineKind::Cegar,
        EngineKind::Spacer,
        EngineKind::Gpdr,
        EngineKind::Duality,
    ];
    print!("{:<18} {:>9}", "benchmark", "expected");
    for e in engines {
        print!(" {:>12}", e.name());
    }
    println!(" {:>16}", "portfolio");
    for bench in paper_examples() {
        let expected = match bench.expected {
            Expected::Safe => "safe",
            Expected::Unsafe => "unsafe",
        };
        print!("{:<18} {:>9}", bench.name, expected);
        for e in engines {
            let budget = Budget::timeout(timeout);
            let start = Instant::now();
            let v = run_engine(e, &bench.system, &budget, None, 256);
            let t = start.elapsed();
            // A definite verdict only counts if its certificate checks.
            let cell = if v.is_definite() && check_certificate(&bench.system, &v, &budget) {
                format!("{} {:.2}s", v.label(), t.as_secs_f64())
            } else {
                "timeout".to_string()
            };
            print!(" {cell:>12}");
        }
        let config = PortfolioConfig::default();
        let out = solve_portfolio(&bench.system, &config, &Budget::timeout(timeout));
        let cell = match out.winner {
            Some(w) => format!("{} {:.2}s ({w})", out.verdict.label(), out.wall.as_secs_f64()),
            None => "timeout".to_string(),
        };
        println!(" {cell:>16}");
    }
}
