//! The paper's program (c): recursive fibonacci with the contract
//! `fibo(x) >= x - 1`, producing *non-linear* Horn clauses (two
//! occurrences of the summary predicate in one body). The solver's
//! counterexample-guided sampling builds derivation trees of positive
//! samples (the paper's Fig. 7) before learning the summary.
//!
//! Run with `cargo run --release --example recursive_fibonacci`.

use linarb::frontend::compile;
use linarb::smt::Budget;
use linarb::solver::{CegarSolver, SolveResult, SolverConfig};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let safe = r#"
        int fibo(int x) {
            if (x < 1) { return 0; }
            else { if (x == 1) { return 1; }
                   else { return fibo(x - 1) + fibo(x - 2); } }
        }
        void main() {
            int n = nondet();
            assert(fibo(n) >= n - 1);
        }
    "#;
    let sys = compile(safe)?;
    println!("fibo contract  fibo(x) >= x - 1");
    println!(
        "CHC system: {} clauses; non-linear clause present: {}",
        sys.num_clauses(),
        sys.clauses().iter().any(|c| c.body_preds.len() > 1)
    );
    let mut solver = CegarSolver::new(&sys, SolverConfig::default());
    match solver.solve(&Budget::timeout(Duration::from_secs(60))) {
        SolveResult::Sat(interp) => {
            println!("verdict: SAFE");
            for (pred, formula) in &interp {
                println!("summary of {}: {formula}", sys.pred(*pred).name);
            }
        }
        other => println!("unexpected: {other:?}"),
    }

    // Now the false contract fibo(x) >= x (fails at x = 2): the solver
    // answers UNSAT with a concrete derivation tree, which we replay.
    let unsafe_src = safe.replace("assert(fibo(n) >= n - 1);", "assume(n > 1); assert(fibo(n) >= n);");
    let sys2 = compile(&unsafe_src)?;
    let mut solver2 = CegarSolver::new(&sys2, SolverConfig::default());
    match solver2.solve(&Budget::timeout(Duration::from_secs(60))) {
        SolveResult::Unsat(cex) => {
            println!("\nfalse contract fibo(x) >= x refuted:");
            println!(
                "derivation tree: {} steps, depth {}, replays = {}",
                cex.size(),
                cex.depth(),
                cex.replay(&sys2)
            );
        }
        other => println!("unexpected: {other:?}"),
    }
    Ok(())
}
