//! The paper's program (a) (Fig. 3): the diamond walk whose loop
//! invariant is irreducibly ∨∧-shaped — the motivating example for
//! `LinearArbitrary` (Fig. 6). Also demonstrates the learning
//! pipeline on the figure's exact sample set, and compares the
//! decision-tree ablation.
//!
//! Run with `cargo run --release --example disjunctive_invariant`.

use linarb::arith::int;
use linarb::logic::Var;
use linarb::ml::{learn, linear_arbitrary, Dataset, LearnConfig};
use linarb::smt::Budget;
use linarb::solver::{CegarSolver, SolveResult, SolverConfig};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fig. 6(i): the samples drawn in the paper.
    let mut data = Dataset::new(2);
    for (x, y) in [(0, -2), (0, -1), (0, 0), (0, 1)] {
        data.add_positive(vec![int(x), int(y)]);
    }
    for (x, y) in [(3, -3), (-3, 3)] {
        data.add_negative(vec![int(x), int(y)]);
    }
    let params = vec![Var::from_index(0), Var::from_index(1)];

    let raw = linear_arbitrary(&data, &params, &LearnConfig::default())?;
    println!("Algorithm 1 (LinearArbitrary) classifier:\n  {raw}\n");

    let (generalized, stats) = learn(&data, &params, &LearnConfig::default())?;
    println!(
        "Algorithm 2 (with decision tree, {} nodes) classifier:\n  {generalized}\n",
        stats.dt_size
    );

    // End-to-end on the full program.
    let src = r#"
        void main() {
            int x = 0; int y = nondet();
            while (y != 0) {
                if (y < 0) { x = x - 1; y = y + 1; }
                else       { x = x + 1; y = y - 1; }
                assert(x != 0);
            }
        }
    "#;
    let sys = linarb::frontend::compile(src)?;
    let mut solver = CegarSolver::new(&sys, SolverConfig::default());
    match solver.solve(&Budget::timeout(Duration::from_secs(120))) {
        SolveResult::Sat(interp) => {
            println!("program (a) verified; learned loop invariant:");
            for (pred, formula) in &interp {
                println!("  {}: {formula}", sys.pred(*pred).name);
            }
            println!(
                "\n(invariant uses both conjunction and disjunction: the shape\n existing linear-classification verifiers cannot express)"
            );
        }
        other => println!("unexpected: {other:?}"),
    }
    Ok(())
}
