//! A miniature verifier CLI: reads a mini-C file (or an SMT-LIB2 HORN
//! file) and verifies it with the data-driven solver — the repo's
//! equivalent of running the paper's SeaHorn pass.
//!
//! Usage:
//! ```text
//! cargo run --release --example mini_c_verify -- path/to/file.c
//! cargo run --release --example mini_c_verify -- path/to/file.smt2
//! cargo run --release --example mini_c_verify            # built-in demo
//! ```

use linarb::logic::parse_chc;
use linarb::smt::Budget;
use linarb::solver::{CegarSolver, SolveResult, SolverConfig};
use std::time::Duration;

const DEMO: &str = r#"
    int sum(int n) {
        if (n <= 0) { return 0; }
        return sum(n - 1) + n;
    }
    void main() {
        int n = nondet();
        assume(n >= 1);
        assert(sum(n) >= n);
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arg = std::env::args().nth(1);
    let (name, sys) = match &arg {
        Some(path) => {
            let text = std::fs::read_to_string(path)?;
            let sys = if path.ends_with(".smt2") {
                parse_chc(&text)?
            } else {
                linarb::frontend::compile(&text)?
            };
            (path.clone(), sys)
        }
        None => {
            println!("no file given; verifying the built-in demo:\n{DEMO}");
            ("<demo>".to_string(), linarb::frontend::compile(DEMO)?)
        }
    };
    println!(
        "{name}: {} clauses, {} predicates, recursive: {}",
        sys.num_clauses(),
        sys.num_preds(),
        sys.is_recursive()
    );
    let timeout = Duration::from_millis(
        std::env::var("LINARB_TIMEOUT_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(60_000),
    );
    let mut solver = CegarSolver::new(&sys, SolverConfig::default());
    match solver.solve(&Budget::timeout(timeout)) {
        SolveResult::Sat(interp) => {
            println!("result: SAFE");
            for (pred, f) in &interp {
                println!("  {} := {f}", sys.pred(*pred).name);
            }
        }
        SolveResult::Unsat(cex) => {
            println!(
                "result: UNSAFE — derivation tree with {} steps (replay ok: {})",
                cex.size(),
                cex.replay(&sys)
            );
        }
        SolveResult::Unknown(reason) => println!("result: UNKNOWN ({reason:?})"),
    }
    Ok(())
}
