//! Trace determinism: two runs of the same benchmark under the same
//! configuration must emit identical event sequences once timestamps
//! are stripped. The solver is deterministic (no randomness, no
//! iteration over hash maps in observable order), so the trace — which
//! reflects every oracle call, refinement, and learner invocation —
//! must be too. A diff here means either the solver or the tracing
//! layer picked up hidden nondeterminism.

use linarb::logic::parse_chc;
use linarb::smt::Budget;
use linarb::solver::{CegarSolver, SolveResult, SolverConfig};
use linarb::trace::{CollectingSink, Event, Level, LocalSinkGuard};

fn traced_run(src: &str) -> (Vec<Event>, &'static str) {
    let sink = CollectingSink::new();
    let guard = LocalSinkGuard::install(Box::new(sink.clone()), Level::Debug);
    let sys = parse_chc(src).expect("benchmark parses");
    let mut solver = CegarSolver::new(&sys, SolverConfig::default());
    let verdict = match solver.solve(&Budget::unlimited()) {
        SolveResult::Sat(_) => "sat",
        SolveResult::Unsat(_) => "unsat",
        SolveResult::Unknown(_) => "unknown",
    };
    drop(guard);
    (sink.take(), verdict)
}

#[test]
fn identical_runs_emit_identical_traces() {
    let src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/fig1.smt2"
    ))
    .expect("example benchmark present");

    let (events1, verdict1) = traced_run(&src);
    let (events2, verdict2) = traced_run(&src);

    assert_eq!(verdict1, "sat", "Fig. 1 must verify");
    assert_eq!(verdict1, verdict2);
    assert!(!events1.is_empty(), "a Debug-level solve must trace");

    let keys = |evs: &[Event]| -> Vec<String> {
        evs.iter().map(Event::deterministic_key).collect()
    };
    let (k1, k2) = (keys(&events1), keys(&events2));
    if k1 != k2 {
        // Locate the first divergence for a readable failure.
        let n = k1.len().min(k2.len());
        for i in 0..n {
            assert_eq!(k1[i], k2[i], "traces diverge at event {i}");
        }
        panic!(
            "traces have different lengths: {} vs {} events",
            k1.len(),
            k2.len()
        );
    }
}

#[test]
fn trace_covers_all_layers() {
    let src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/fig1.smt2"
    ))
    .expect("example benchmark present");
    let sink = CollectingSink::new();
    let guard = LocalSinkGuard::install(Box::new(sink.clone()), Level::Trace);
    let sys = parse_chc(&src).unwrap();
    let mut solver = CegarSolver::new(&sys, SolverConfig::default());
    assert!(solver.solve(&Budget::unlimited()).is_sat());
    drop(guard);
    let events = sink.take();
    for target in ["core", "smt", "sat", "ml"] {
        assert!(
            events.iter().any(|e| e.target == target),
            "no events from `{target}` in a full solve"
        );
    }
}
