//! Cross-crate integration tests: mini-C → CHC → every solver engine,
//! with independent validation of both answers (interpretations are
//! re-checked clause by clause; counterexamples are replayed
//! concretely).

use linarb::baselines::{bmc, BmcResult};
use linarb::frontend::compile;
use linarb::logic::parse_chc;
use linarb::smt::Budget;
use linarb::solver::{
    solve_system, verify_interpretation, SolveResult, SolverConfig,
};
use linarb::suite::{paper_examples, Expected};
use std::time::Duration;

fn budget() -> Budget {
    Budget::timeout(Duration::from_secs(60))
}

#[test]
fn paper_quickset_verdicts_and_validation() {
    // The subset of paper examples that solve quickly; validated
    // independently.
    for bench in paper_examples() {
        if !matches!(
            bench.name.as_str(),
            "fig1" | "program_c_fibo" | "fibo_unsafe" | "rec_hanoi3" | "fib2calls"
        ) {
            continue;
        }
        let r = solve_system(&bench.system, SolverConfig::default(), &budget());
        match (&r, bench.expected) {
            (SolveResult::Sat(interp), Expected::Safe) => {
                assert_eq!(
                    verify_interpretation(&bench.system, interp, &budget()),
                    Some(true),
                    "{}: interpretation must validate",
                    bench.name
                );
            }
            (SolveResult::Unsat(tree), Expected::Unsafe) => {
                assert!(tree.replay(&bench.system), "{}: cex must replay", bench.name);
            }
            other => panic!("{}: wrong outcome {other:?}", bench.name),
        }
    }
}

#[test]
fn solver_agrees_with_bmc_on_unsafe_programs() {
    // Anything the CEGAR solver refutes, BMC must also refute (at
    // some depth), and vice versa on these small programs.
    let programs = [
        r#"void main() { int x = 0; while (x < 5) { x = x + 3; } assert(x == 5); }"#,
        r#"void main() { int x = 10; int y = 0; while (x > 0) { x = x - 1; y = y + 1; } assert(y <= 9); }"#,
    ];
    for src in programs {
        let sys = compile(src).unwrap();
        let cegar = solve_system(&sys, SolverConfig::default(), &budget());
        assert!(cegar.is_unsat(), "{src}");
        let b = bmc(&sys, 16, &budget());
        assert!(matches!(b, BmcResult::Violation { .. }), "{src}: BMC must agree");
    }
}

#[test]
fn smtlib_roundtrip_preserves_verdict() {
    // Compile a program, print to SMT-LIB2, reparse, and solve both.
    let src = r#"
        void main() {
            int i = 0; int s = 0;
            while (i < 8) { i = i + 1; s = s + 2; }
            assert(s == 16);
        }
    "#;
    let sys1 = compile(src).unwrap();
    let text = sys1.to_smtlib();
    let sys2 = parse_chc(&text).unwrap();
    let r1 = solve_system(&sys1, SolverConfig::default(), &budget());
    let r2 = solve_system(&sys2, SolverConfig::default(), &budget());
    assert!(r1.is_sat(), "{r1:?}");
    assert!(r2.is_sat(), "{r2:?}");
}

#[test]
fn all_engines_sound_on_mixed_sample() {
    // Every engine, on a small mixed suite: no engine may ever
    // contradict ground truth.
    use linarb::baselines::{
        DigLearner, InterpConfig, InterpMode, PdrConfig, PdrSolver, PieLearner, UnwindInterp,
    };
    use std::sync::Arc;

    let suite: Vec<_> = linarb::suite::chc381_scaled(0.05);
    let short = Budget::timeout(Duration::from_millis(1500));
    for bench in suite.iter().take(12) {
        // CEGAR-based engines
        for config in [
            SolverConfig::default(),
            SolverConfig::with_learner(Arc::new(PieLearner::default())),
            SolverConfig::with_learner(Arc::new(DigLearner::default())),
        ] {
            let name = format!("{config:?}");
            match solve_system(&bench.system, config, &short) {
                SolveResult::Sat(_) => {
                    assert_eq!(bench.expected, Expected::Safe, "{}: {name}", bench.name)
                }
                SolveResult::Unsat(_) => {
                    assert_eq!(bench.expected, Expected::Unsafe, "{}: {name}", bench.name)
                }
                SolveResult::Unknown(_) => {}
            }
        }
        // PDR
        for spacer in [false, true] {
            let mut pdr = PdrSolver::new(
                &bench.system,
                PdrConfig { spacer_mode: spacer, ..PdrConfig::default() },
            );
            match pdr.solve(&short) {
                linarb::baselines::PdrResult::Sat(_) => {
                    assert_eq!(bench.expected, Expected::Safe, "{} pdr", bench.name)
                }
                linarb::baselines::PdrResult::Unsat(_) => {
                    assert_eq!(bench.expected, Expected::Unsafe, "{} pdr", bench.name)
                }
                linarb::baselines::PdrResult::Unknown => {}
            }
        }
        // Interpolation
        for mode in [InterpMode::Duality, InterpMode::TraceRefinement] {
            let mut ui = UnwindInterp::new(
                &bench.system,
                InterpConfig { mode, ..InterpConfig::default() },
            );
            match ui.solve(&short) {
                linarb::baselines::InterpResult::Sat(_) => {
                    assert_eq!(bench.expected, Expected::Safe, "{} interp", bench.name)
                }
                linarb::baselines::InterpResult::Unsat { .. } => {
                    assert_eq!(bench.expected, Expected::Unsafe, "{} interp", bench.name)
                }
                linarb::baselines::InterpResult::Unknown => {}
            }
        }
    }
}

#[test]
fn learned_invariant_matches_paper_shape_for_fibo() {
    // The paper reports the fibo summary −x+y+1 ≥ 0 ∧ −x+2y ≥ 0.
    // Our pipeline should find an equivalent (not necessarily
    // syntactically identical) summary — check entailment both ways
    // on the solved system.
    let bench = linarb::suite::program_c_fibo();
    let r = solve_system(&bench.system, SolverConfig::default(), &budget());
    let SolveResult::Sat(interp) = r else {
        panic!("fibo must verify");
    };
    let pred = bench.system.pred_by_name("fibo").unwrap();
    let learned = interp.get(&pred.id).expect("fibo summary");
    // The learned summary must at least entail the safety property
    // y >= x - 1 (over the summary's parameters: arg, ret).
    use linarb::logic::{Atom, Formula, LinExpr};
    let x = LinExpr::var(pred.params[0]);
    let y = LinExpr::var(pred.params[1]);
    let property = Formula::from(Atom::ge(y, &x - &LinExpr::constant(linarb::arith::int(1))));
    assert_eq!(
        linarb::smt::entails(learned, &property, &budget()),
        Some(true),
        "summary {learned} must entail the contract"
    );
}

#[test]
fn unsat_cex_depth_grows_with_bug_depth() {
    // The deeper the bug, the taller the derivation tree.
    let shallow = compile(
        r#"void main() { int x = 0; while (x < 1) { x = x + 1; } assert(x == 2); }"#,
    )
    .unwrap();
    let deep = compile(
        r#"void main() { int x = 0; while (x < 6) { x = x + 1; } assert(x == 7); }"#,
    )
    .unwrap();
    let rs = solve_system(&shallow, SolverConfig::default(), &budget());
    let rd = solve_system(&deep, SolverConfig::default(), &budget());
    let (SolveResult::Unsat(ts), SolveResult::Unsat(td)) = (rs, rd) else {
        panic!("both must be refuted");
    };
    assert!(ts.replay(&shallow) && td.replay(&deep));
    assert!(
        td.size() > ts.size(),
        "deep bug ({}) must need a bigger derivation than shallow ({})",
        td.size(),
        ts.size()
    );
}
