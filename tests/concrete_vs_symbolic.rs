//! Differential testing: concrete executions of the corpus programs
//! must agree with the symbolic verdicts.
//!
//! * If random executions hit an assertion failure, the benchmark's
//!   ground truth must be `Unsafe` **and** no solver engine may ever
//!   claim `Sat` for it.
//! * If a benchmark is marked `Unsafe`, some random execution should
//!   witness the failure (for these small programs) — validating the
//!   corpus's ground-truth labels themselves.

use linarb::frontend::{execute, parse_program, ExecOutcome, NondetScript};
use linarb::smt::Budget;
use linarb::solver::{solve_system, SolverConfig};
use linarb::suite::{chc381_scaled, Expected};
use linarb_testutil::XorShiftRng;
use std::time::Duration;

fn random_runs(src: &str, runs: usize, seed: u64) -> (bool, bool) {
    // (saw_assert_failure, saw_completion)
    let prog = parse_program(src).expect("corpus programs parse");
    let mut rng = XorShiftRng::seed_from_u64(seed);
    let mut failed = false;
    let mut completed = false;
    for _ in 0..runs {
        let script: Vec<i128> = (0..64)
            .map(|_| {
                // mix of small values and loop-continue bits
                if rng.gen_bool(0.5) {
                    rng.gen_range(-8i128..=8)
                } else {
                    rng.gen_range(0i128..=1)
                }
            })
            .collect();
        match execute(&prog, NondetScript::new(script), 50_000) {
            ExecOutcome::AssertFailed => failed = true,
            ExecOutcome::Completed => completed = true,
            _ => {}
        }
        if failed && completed {
            break;
        }
    }
    (failed, completed)
}

#[test]
fn executions_agree_with_ground_truth() {
    let suite = chc381_scaled(0.12);
    for bench in &suite {
        let Some(src) = &bench.source else { continue };
        let (failed, _) = random_runs(src, 400, 0xD1FF ^ bench.name.len() as u64);
        if failed {
            assert_eq!(
                bench.expected,
                Expected::Unsafe,
                "{}: concrete execution violated an assertion but the \
                 benchmark is labeled Safe — corpus ground truth is wrong",
                bench.name
            );
        }
    }
}

#[test]
fn unsafe_labels_have_concrete_witnesses() {
    // Every Unsafe benchmark in the sample should be falsifiable by
    // random testing (they are shallow by construction).
    let suite = chc381_scaled(0.12);
    let mut checked = 0;
    for bench in &suite {
        if bench.expected != Expected::Unsafe {
            continue;
        }
        let Some(src) = &bench.source else { continue };
        let (failed, _) = random_runs(src, 3_000, 0xFEED ^ bench.name.len() as u64);
        assert!(
            failed,
            "{}: labeled Unsafe but 3000 random runs found no violation",
            bench.name
        );
        checked += 1;
    }
    assert!(checked > 0, "sample must contain unsafe benchmarks");
}

#[test]
fn solver_never_calls_concretely_unsafe_programs_safe() {
    // The strongest soundness check: fuzz + verify on the same
    // programs; a Sat verdict together with a concrete violation is a
    // soundness bug somewhere in the pipeline.
    let suite = chc381_scaled(0.08);
    for bench in suite.iter().take(30) {
        let Some(src) = &bench.source else { continue };
        let (failed, _) = random_runs(src, 500, 42);
        let verdict = solve_system(
            &bench.system,
            SolverConfig::default(),
            &Budget::timeout(Duration::from_millis(1500)),
        );
        if failed {
            assert!(
                !verdict.is_sat(),
                "{}: solver says Sat but a concrete run violates an assertion",
                bench.name
            );
        }
        if verdict.is_unsat() {
            assert_eq!(
                bench.expected,
                Expected::Unsafe,
                "{}: solver refutes a Safe-labeled program",
                bench.name
            );
        }
    }
}
