//! `linarb` — command-line front door to the data-driven CHC solver.
//!
//! Reads a CHC system from an SMT-LIB2 HORN file (`.smt2`) or a mini-C
//! program (`.c`), runs the CEGAR solver, and prints `sat`, `unsat`,
//! or `unknown`. Structured tracing and metrics from `linarb-trace`
//! are exposed via `--trace`, `--trace-out`, and `--stats`.

use linarb::ml::LearnConfig;
use linarb::portfolio::{self, EngineKind, EngineVerdict, PortfolioConfig};
use linarb::smt::Budget;
use linarb::solver::{CegarSolver, OracleMode, SolveResult, SolverConfig};
use linarb::trace::{self, Level};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
usage: linarb [options] <file.smt2|file.c>
       linarb serve [options]     run the solver daemon (see serve --help)
       linarb client [options]    talk to a running daemon

options:
  --trace <off|info|debug|trace>  stderr trace verbosity (default off;
                                  env LINARB_TRACE)
  --trace-out <path>              write the trace as JSONL to <path>
                                  instead of stderr (env LINARB_TRACE_OUT)
  --stats                         print the end-of-run metrics report
                                  (counters, histograms, span timers) as
                                  JSON on stdout
  --engine <name>                 `portfolio` races cegar, pie, dig,
                                  spacer, bmc, and duality under one
                                  shared budget (first checkable
                                  certificate wins; --threads sets the
                                  race width); any single engine name
                                  runs just that engine with its
                                  certificate checked. Omit the flag
                                  for the classic CEGAR path
  --oracle <incremental|fresh>    SMT oracle mode (default incremental)
  --oracle-reset                  reset SAT decision heuristics between
                                  incremental checks
  --threads <n>                   worker threads for parallel clause
                                  checking (default 1; env
                                  LINARB_THREADS). Results are
                                  bit-identical at every thread count
  --no-dt                         disable decision-tree generalization
  --profile                       aggregate the span tree into a
                                  hierarchical self-profile; print a
                                  summary to stderr after solving
  --profile-out <path>            write the profile as JSON to <path>
                                  and collapsed-stack lines (flamegraph
                                  input) to <path>.folded; implies
                                  --profile
  --progress                      emit one progress line per CEGAR
                                  round to stderr
  --progress-out <path>           write progress snapshots as JSONL to
                                  <path> instead of stderr
  --timeout-ms <n>                solve budget in milliseconds
  --max-iterations <n>            CEGAR iteration cap
  --check-jsonl <path>            validate that <path> is well-formed
                                  JSONL and exit (used by CI)
  --help                          this message

exit status: 0 = sat/unsat decided, 2 = unknown, 1 = error";

/// What `--engine` selected.
#[derive(Clone, Copy)]
enum EngineSel {
    /// Race the default engine set.
    Portfolio,
    /// Run exactly one engine (certificate still checked).
    Single(EngineKind),
}

struct Cli {
    file: Option<String>,
    engine: Option<EngineSel>,
    trace_level: Level,
    trace_out: Option<String>,
    stats: bool,
    oracle: OracleMode,
    oracle_reset: bool,
    threads: Option<usize>,
    no_dt: bool,
    profile: bool,
    profile_out: Option<String>,
    progress: bool,
    progress_out: Option<String>,
    timeout_ms: Option<u64>,
    max_iterations: Option<usize>,
    check_jsonl: Option<String>,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        file: None,
        engine: None,
        trace_level: Level::Off,
        trace_out: None,
        stats: false,
        oracle: OracleMode::Incremental,
        oracle_reset: false,
        threads: None,
        no_dt: false,
        profile: false,
        profile_out: None,
        progress: false,
        progress_out: None,
        timeout_ms: None,
        max_iterations: None,
        check_jsonl: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--trace" => {
                let v = value("--trace")?;
                cli.trace_level = Level::parse(&v)
                    .ok_or_else(|| format!("bad --trace level `{v}`"))?;
            }
            "--engine" => {
                let v = value("--engine")?;
                cli.engine = Some(if v == "portfolio" {
                    EngineSel::Portfolio
                } else {
                    EngineSel::Single(EngineKind::parse(&v).ok_or_else(|| {
                        format!(
                            "bad --engine `{v}` (expected portfolio or one of: {})",
                            EngineKind::all()
                                .iter()
                                .map(|k| k.name())
                                .collect::<Vec<_>>()
                                .join(", ")
                        )
                    })?)
                });
            }
            "--trace-out" => cli.trace_out = Some(value("--trace-out")?),
            "--stats" => cli.stats = true,
            "--oracle" => {
                cli.oracle = match value("--oracle")?.as_str() {
                    "incremental" => OracleMode::Incremental,
                    "fresh" => OracleMode::Fresh,
                    other => return Err(format!("bad --oracle mode `{other}`")),
                };
            }
            "--oracle-reset" => cli.oracle_reset = true,
            "--threads" => {
                let n: usize = value("--threads")?
                    .parse()
                    .map_err(|_| "bad --threads value".to_string())?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                cli.threads = Some(n);
            }
            "--no-dt" => cli.no_dt = true,
            "--profile" => cli.profile = true,
            "--profile-out" => {
                cli.profile_out = Some(value("--profile-out")?);
                cli.profile = true;
            }
            "--progress" => cli.progress = true,
            "--progress-out" => {
                cli.progress_out = Some(value("--progress-out")?);
                cli.progress = true;
            }
            "--timeout-ms" => {
                cli.timeout_ms = Some(
                    value("--timeout-ms")?
                        .parse()
                        .map_err(|_| "bad --timeout-ms value".to_string())?,
                );
            }
            "--max-iterations" => {
                cli.max_iterations = Some(
                    value("--max-iterations")?
                        .parse()
                        .map_err(|_| "bad --max-iterations value".to_string())?,
                );
            }
            "--check-jsonl" => cli.check_jsonl = Some(value("--check-jsonl")?),
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            _ => {
                if cli.file.replace(arg).is_some() {
                    return Err("more than one input file".to_string());
                }
            }
        }
    }
    Ok(cli)
}

fn load_system(path: &str) -> Result<linarb::logic::ChcSystem, String> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {path}: {e}"))?;
    if path.ends_with(".c") {
        linarb::frontend::compile(&src).map_err(|e| format!("{path}: {e}"))
    } else {
        linarb::logic::parse_chc(&src).map_err(|e| format!("{path}: {e}"))
    }
}

fn main() -> ExitCode {
    // Subcommand dispatch: `linarb serve …` / `linarb client …` run
    // the daemon paths; anything else is the classic one-shot CLI.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("serve") => return ExitCode::from(linarb::serve::cli::serve_main(&argv[1..]) as u8),
        Some("client") => {
            return ExitCode::from(linarb::serve::cli::client_main(&argv[1..]) as u8)
        }
        _ => {}
    }

    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("linarb: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    // CI helper: validate a JSONL trace without solving anything.
    if let Some(path) = &cli.check_jsonl {
        return match std::fs::read_to_string(path) {
            Err(e) => {
                eprintln!("linarb: cannot read {path}: {e}");
                ExitCode::FAILURE
            }
            Ok(text) => match trace::json::validate_jsonl(&text) {
                Ok(0) => {
                    eprintln!("linarb: {path}: empty JSONL document");
                    ExitCode::FAILURE
                }
                Ok(n) => {
                    println!("{path}: {n} valid JSONL records");
                    ExitCode::SUCCESS
                }
                Err((line, e)) => {
                    eprintln!("linarb: {path}:{line}: {e}");
                    ExitCode::FAILURE
                }
            },
        };
    }

    let Some(file) = &cli.file else {
        eprintln!("linarb: no input file");
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };

    // CLI flags take precedence; fall back to LINARB_TRACE[_OUT].
    let level = if cli.trace_level != Level::Off || cli.trace_out.is_some() {
        trace::install_cli_sink(cli.trace_level, cli.trace_out.as_deref())
    } else {
        trace::init_from_env()
    };
    // Metrics feed --stats and the JSONL metrics trailer.
    let collect_metrics = cli.stats || level != Level::Off;
    if collect_metrics {
        trace::metrics::enable(true);
    }

    let sys = match load_system(file) {
        Ok(sys) => sys,
        Err(msg) => {
            eprintln!("linarb: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let mut learn = LearnConfig::default();
    if cli.no_dt {
        learn.use_decision_tree = false;
    }
    let mut config = SolverConfig::with_learn_config(learn)
        .with_oracle(cli.oracle)
        .with_oracle_reset(cli.oracle_reset);
    if let Some(n) = cli.threads {
        config = config.with_threads(n);
    }
    if let Some(n) = cli.max_iterations {
        config.max_iterations = n;
    }
    if cli.progress {
        let reporter = match &cli.progress_out {
            Some(path) => {
                match linarb::solver::ProgressReporter::jsonl_file(std::path::Path::new(path)) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("linarb: cannot open {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            None => linarb::solver::ProgressReporter::stderr(),
        };
        config = config.with_progress(reporter);
    }
    let budget = match cli.timeout_ms {
        Some(ms) => Budget::timeout(Duration::from_millis(ms)),
        None => Budget::unlimited(),
    };

    // The scope must exist before the solve so worker fan-outs see the
    // profiler enabled; dropping it after export re-disables profiling.
    let pscope = cli.profile.then(trace::ProfileScope::new);
    let start = std::time::Instant::now();
    // Either the portfolio driver (`--engine ...`) or the classic
    // direct CEGAR path; exactly one of the two is `Some` afterwards.
    let mut cegar = None;
    let mut race = None;
    match cli.engine {
        Some(sel) => {
            let mut pconfig = PortfolioConfig::from_env();
            pconfig.threads = cli
                .threads
                .or_else(|| std::env::var("LINARB_THREADS").ok()?.parse().ok())
                .unwrap_or(1);
            if let EngineSel::Single(kind) = sel {
                // CLI selection beats LINARB_PORTFOLIO_FORCE.
                pconfig.force = Some(kind);
            }
            race = Some(portfolio::solve_portfolio(&sys, &pconfig, &budget));
        }
        None => {
            let mut solver = CegarSolver::new(&sys, config);
            let result = solver.solve(&budget);
            cegar = Some((solver, result));
        }
    }
    let wall = start.elapsed();
    if let Some(ps) = &pscope {
        let tree = ps.take_tree();
        if let Some(violation) = tree.check_invariant(50) {
            eprintln!("linarb: profile invariant violated: {violation}");
        }
        if let Some(path) = &cli.profile_out {
            let folded = format!("{path}.folded");
            if let Err(e) = std::fs::write(path, tree.to_json()) {
                eprintln!("linarb: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            if let Err(e) = std::fs::write(&folded, tree.to_collapsed()) {
                eprintln!("linarb: cannot write {folded}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("linarb: profile written to {path} (collapsed: {folded})");
        }
        // Stderr summary: the outermost spans and their heaviest
        // children, against measured wall for a sanity cross-check.
        eprintln!(
            "profile: root {}us over {} top-level span(s), wall {}us",
            tree.root_incl_us(),
            tree.root.children.len(),
            wall.as_micros()
        );
        for top in tree.root.children.values() {
            eprintln!(
                "  {:28} calls {:6} incl {:10}us excl {:8}us",
                top.name,
                top.calls,
                top.incl_us,
                top.excl_us()
            );
            for child in top.children.values() {
                eprintln!(
                    "    {:26} calls {:6} incl {:10}us excl {:8}us",
                    child.name,
                    child.calls,
                    child.incl_us,
                    child.excl_us()
                );
            }
        }
    }

    let (verdict, code) = match (&cegar, &race) {
        (Some((_, result)), _) => match result {
            SolveResult::Sat(_) => ("sat", ExitCode::SUCCESS),
            SolveResult::Unsat(_) => ("unsat", ExitCode::SUCCESS),
            SolveResult::Unknown(_) => ("unknown", ExitCode::from(2)),
        },
        (None, Some(out)) => match &out.verdict {
            EngineVerdict::Sat(_) => ("sat", ExitCode::SUCCESS),
            EngineVerdict::Unsat(_) => ("unsat", ExitCode::SUCCESS),
            EngineVerdict::Unknown(_) => ("unknown", ExitCode::from(2)),
        },
        (None, None) => unreachable!("one of the paths always runs"),
    };
    println!("{verdict}");
    if let Some((_, SolveResult::Unknown(reason))) = &cegar {
        eprintln!("linarb: unknown: {reason:?}");
    }
    if let Some(out) = &race {
        if let EngineVerdict::Unknown(reason) = &out.verdict {
            eprintln!("linarb: unknown: {reason}");
        }
        // Per-engine outcome/time/winner table on stderr.
        if cli.stats || cli.progress {
            for line in out.summary_lines() {
                eprintln!("portfolio: {line}");
            }
        }
    }

    if collect_metrics {
        let mut report = trace::metrics::take_report();
        if let Some((solver, _)) = &cegar {
            solver.stats().export_into(&mut report);
        }
        if let Some(out) = &race {
            out.export_into(&mut report);
        }
        report.set_counter("cli.wall_us", wall.as_micros() as u64);
        trace::emit_metrics(&report);
        if cli.stats {
            println!("{}", report.to_json());
        }
    }
    // Dropping the global sink flushes the JSONL file.
    trace::clear_global_sink();
    code
}
