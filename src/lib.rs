//! # linarb — a data-driven CHC solver
//!
//! A from-scratch Rust reproduction of *"A Data-Driven CHC Solver"*
//! (He Zhu, Stephen Magill, Suresh Jagannathan, PLDI 2018) — the
//! **LinearArbitrary** system — including every substrate the paper's
//! tool depends on: exact big-number arithmetic, a CDCL SAT solver, a
//! QF_LIA SMT solver with models and Farkas certificates, the
//! machine-learning toolchain (recursive linear classification +
//! decision trees), the CEGAR sampling loop, a mini-C frontend, and
//! the evaluation's baseline solvers (PDR, interpolation, PIE- and
//! DIG-style learners).
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | module | crate | role |
//! |--------|-------|------|
//! | [`arith`] | `linarb-arith` | `BigInt` / `BigRational` |
//! | [`logic`] | `linarb-logic` | terms, atoms, formulas, CHC systems, SMT-LIB2 HORN parsing |
//! | [`sat`] | `linarb-sat` | CDCL SAT |
//! | [`smt`] | `linarb-smt` | DPLL(T) for linear integer arithmetic |
//! | [`ml`] | `linarb-ml` | Algorithms 1 & 2 (LinearArbitrary, decision trees) |
//! | [`solver`] | `linarb-solver` | Algorithm 3 (the CEGAR CHC solver) |
//! | [`frontend`] | `linarb-frontend` | mini-C → CHC |
//! | [`baselines`] | `linarb-baselines` | BMC, GPDR/Spacer, Duality/UAutomizer, PIE, DIG |
//! | [`portfolio`] | `linarb-portfolio` | races all engines, first checkable certificate wins |
//! | [`serve`] | `linarb-serve` | persistent daemon, invariant cache, batch scheduling |
//! | [`suite`] | `linarb-suite` | the benchmark corpus |
//!
//! # Quickstart
//!
//! Verify the paper's Fig. 1 program end to end:
//!
//! ```
//! use linarb::frontend::compile;
//! use linarb::smt::Budget;
//! use linarb::solver::{solve_system, SolverConfig};
//!
//! let sys = compile(r#"
//!     void main() {
//!         int x = 1; int y = 0;
//!         while (*) { x = x + y; y = y + 1; }
//!         assert(x >= y);
//!     }
//! "#)?;
//! let result = solve_system(&sys, SolverConfig::default(), &Budget::unlimited());
//! assert!(result.is_sat());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use linarb_arith as arith;
pub use linarb_baselines as baselines;
pub use linarb_frontend as frontend;
pub use linarb_logic as logic;
pub use linarb_ml as ml;
pub use linarb_pool as pool;
pub use linarb_portfolio as portfolio;
pub use linarb_sat as sat;
pub use linarb_serve as serve;
pub use linarb_smt as smt;
pub use linarb_solver as solver;
pub use linarb_suite as suite;
pub use linarb_trace as trace;
